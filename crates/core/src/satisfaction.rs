//! The satisfaction semantics `I ⊨ φ` (Section II of the paper) and
//! reference violation finding.
//!
//! For each pattern tuple `tp ∈ Tp`, let `I(tp) = {t ∈ I | t[X] ≍ tp[X]}`.
//! Then `I ⊨ φ` iff, for every `tp`:
//!
//! 1. `I(tp)` satisfies the embedded FD `X → Y`: any two tuples of `I(tp)`
//!    that agree on `X` also agree on `Y`; and
//! 2. every `t ∈ I(tp)` matches the right-hand pattern: `t[Y, Yp] ≍ tp[Y, Yp]`.
//!
//! Violations of (2) involve a single tuple (`SV`); violations of (1) involve
//! at least two tuples (`MV`). This module is the *reference* implementation
//! of the semantics — quadratic-free but index-light — used both directly by
//! library users on small data and as the differential-testing oracle for the
//! SQL-based detection in `ecfd-detect`.

use crate::ecfd::ECfd;
use crate::error::Result;
use crate::matching::BoundECfd;
use crate::violation::{Violation, ViolationKind, ViolationSet};
use ecfd_relation::{Relation, RowId, Value};
use std::collections::HashMap;

/// Result of checking one constraint (or a set of constraints) against a
/// relation instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatisfactionResult {
    violations: ViolationSet,
    tuples_checked: usize,
}

impl SatisfactionResult {
    /// Whether `I ⊨ φ` (no violations at all).
    pub fn is_satisfied(&self) -> bool {
        self.violations.is_empty()
    }

    /// The full violation set.
    pub fn violations(&self) -> &ViolationSet {
        &self.violations
    }

    /// Consumes the result, returning the violation set.
    pub fn into_violations(self) -> ViolationSet {
        self.violations
    }

    /// Rows flagged as single-tuple violations.
    pub fn single_tuple_violations(&self) -> Vec<RowId> {
        self.violations.sv_rows().iter().copied().collect()
    }

    /// Rows flagged as multi-tuple (embedded-FD) violations.
    pub fn multi_tuple_violations(&self) -> Vec<RowId> {
        self.violations.mv_rows().iter().copied().collect()
    }

    /// Number of tuples inspected.
    pub fn tuples_checked(&self) -> usize {
        self.tuples_checked
    }
}

/// Checks a single eCFD against a relation instance.
pub fn check(relation: &Relation, ecfd: &ECfd) -> Result<SatisfactionResult> {
    check_indexed(relation, ecfd, 0)
}

/// Checks a set of eCFDs; violation records carry the index of the violated
/// constraint within `ecfds`.
pub fn check_all(relation: &Relation, ecfds: &[ECfd]) -> Result<SatisfactionResult> {
    let mut violations = ViolationSet::new();
    for (idx, ecfd) in ecfds.iter().enumerate() {
        let result = check_indexed(relation, ecfd, idx)?;
        violations.merge(result.violations);
    }
    Ok(SatisfactionResult {
        violations,
        tuples_checked: relation.len() * ecfds.len(),
    })
}

/// Convenience predicate: `I ⊨ Σ`.
pub fn satisfies_all(relation: &Relation, ecfds: &[ECfd]) -> Result<bool> {
    Ok(check_all(relation, ecfds)?.is_satisfied())
}

fn check_indexed(
    relation: &Relation,
    ecfd: &ECfd,
    constraint_idx: usize,
) -> Result<SatisfactionResult> {
    let bound = BoundECfd::bind(ecfd, relation.schema())?;
    let mut violations = ViolationSet::new();

    for (tp_idx, _tp) in ecfd.tableau().iter().enumerate() {
        // Group the tuples of I(tp) by their X-projection while checking the
        // right-hand pattern for each member.
        //
        // Key → (representative Y value, rows seen, whether a Y conflict was
        // already found for this key).
        let mut groups: HashMap<Vec<Value>, (Vec<Value>, Vec<RowId>, bool)> = HashMap::new();

        for (row_id, tuple) in relation.iter() {
            if !bound.lhs_matches(tuple, tp_idx) {
                continue; // t ∉ I(tp): the constraint does not apply.
            }
            // Condition (2): single-tuple pattern violation.
            if !bound.rhs_matches(tuple, tp_idx) {
                violations.push(Violation {
                    row: row_id,
                    constraint: constraint_idx,
                    pattern: tp_idx,
                    kind: ViolationKind::SingleTuple,
                });
            }
            // Condition (1): embedded FD, only meaningful when Y ≠ ∅.
            if !bound.fd_rhs_ids().is_empty() {
                let key = bound.lhs_key(tuple);
                let y = bound.fd_rhs_key(tuple);
                let entry = groups
                    .entry(key)
                    .or_insert_with(|| (y.clone(), Vec::new(), false));
                if entry.0 != y {
                    entry.2 = true;
                }
                entry.1.push(row_id);
            }
        }

        // Flag every member of a conflicting group as an MV violation — the
        // paper marks *all* tuples matching the offending (cid, pattern) group.
        for (_, (_, rows, conflict)) in groups {
            if conflict {
                for row in rows {
                    violations.push(Violation {
                        row,
                        constraint: constraint_idx,
                        pattern: tp_idx,
                        kind: ViolationKind::MultiTuple,
                    });
                }
            }
        }
    }

    Ok(SatisfactionResult {
        violations,
        tuples_checked: relation.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ECfdBuilder;
    use ecfd_relation::{DataType, Schema, Tuple};

    fn cust_schema() -> Schema {
        Schema::builder("cust")
            .attr("AC", DataType::Str)
            .attr("PN", DataType::Str)
            .attr("NM", DataType::Str)
            .attr("STR", DataType::Str)
            .attr("CT", DataType::Str)
            .attr("ZIP", DataType::Str)
            .build()
    }

    /// The instance D0 of Fig. 1.
    fn d0() -> Relation {
        Relation::with_tuples(
            cust_schema(),
            [
                Tuple::from_iter(["718", "1111111", "Mike", "Tree Ave.", "Albany", "12238"]),
                Tuple::from_iter(["518", "2222222", "Joe", "Elm Str.", "Colonie", "12205"]),
                Tuple::from_iter(["518", "2222222", "Jim", "Oak Ave.", "Troy", "12181"]),
                Tuple::from_iter(["100", "1111111", "Rick", "8th Ave.", "NYC", "10001"]),
                Tuple::from_iter(["212", "3333333", "Ben", "5th Ave.", "NYC", "10016"]),
                Tuple::from_iter(["646", "4444444", "Ian", "High St.", "NYC", "10011"]),
            ],
        )
        .unwrap()
    }

    fn phi1() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.not_in("CT", ["NYC", "LI"]))
            .pattern(|p| {
                p.in_set("CT", ["Albany", "Troy", "Colonie"])
                    .constant("AC", "518")
            })
            .build()
            .unwrap()
    }

    fn phi2() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| {
                p.constant("CT", "NYC")
                    .in_set("AC", ["212", "718", "646", "347", "917"])
            })
            .build()
            .unwrap()
    }

    #[test]
    fn example_2_2_d0_violates_phi1_and_phi2() {
        // "The database D0 satisfies neither φ1 nor φ2. … t1 violates φ1 since
        //  t1[AC] ≇ t'p[AC]. The tuple t4 violates φ2 …"
        let db = d0();
        let rows = db.row_ids();

        let r1 = check(&db, &phi1()).unwrap();
        assert!(!r1.is_satisfied());
        assert_eq!(
            r1.single_tuple_violations(),
            vec![rows[0]],
            "only t1 violates φ1"
        );
        assert!(
            r1.multi_tuple_violations().is_empty(),
            "no FD conflict in D0 for φ1"
        );

        let r2 = check(&db, &phi2()).unwrap();
        assert!(!r2.is_satisfied());
        assert_eq!(
            r2.single_tuple_violations(),
            vec![rows[3]],
            "only t4 violates φ2"
        );
    }

    #[test]
    fn check_all_attributes_violations_to_constraints() {
        let db = d0();
        let result = check_all(&db, &[phi1(), phi2()]).unwrap();
        assert_eq!(result.violations().num_sv(), 2);
        let grouped = result.violations().by_constraint();
        assert_eq!(grouped[&0].len(), 1);
        assert_eq!(grouped[&1].len(), 1);
        assert!(!satisfies_all(&db, &[phi1(), phi2()]).unwrap());
    }

    #[test]
    fn clean_database_satisfies_the_constraints() {
        let db = Relation::with_tuples(
            cust_schema(),
            [
                Tuple::from_iter(["518", "1111111", "Mike", "Tree Ave.", "Albany", "12238"]),
                Tuple::from_iter(["212", "3333333", "Ben", "5th Ave.", "NYC", "10016"]),
            ],
        )
        .unwrap();
        assert!(satisfies_all(&db, &[phi1(), phi2()]).unwrap());
        let empty = Relation::new(cust_schema());
        assert!(satisfies_all(&empty, &[phi1(), phi2()]).unwrap());
    }

    #[test]
    fn embedded_fd_violations_are_multi_tuple() {
        // Two Utica tuples with different area codes violate the FD part of φ1
        // (Utica ∉ {NYC, LI} so the first pattern tuple applies), and a lone
        // Syracuse tuple stays clean.
        let db = Relation::with_tuples(
            cust_schema(),
            [
                Tuple::from_iter(["315", "1", "A", "S1", "Utica", "13501"]),
                Tuple::from_iter(["607", "2", "B", "S2", "Utica", "13501"]),
                Tuple::from_iter(["315", "3", "C", "S3", "Syracuse", "13201"]),
            ],
        )
        .unwrap();
        let result = check(&db, &phi1()).unwrap();
        let rows = db.row_ids();
        assert_eq!(result.multi_tuple_violations(), vec![rows[0], rows[1]]);
        assert!(result.single_tuple_violations().is_empty());
        assert!(!result.is_satisfied());
    }

    #[test]
    fn a_single_tuple_can_violate_an_ecfd() {
        // The paper: "a single tuple may violate an eCFD while it takes two
        // tuples to violate a standard FD."
        let db = Relation::with_tuples(
            cust_schema(),
            [Tuple::from_iter([
                "718", "1", "Mike", "S", "Albany", "12238",
            ])],
        )
        .unwrap();
        let result = check(&db, &phi1()).unwrap();
        assert_eq!(result.single_tuple_violations().len(), 1);

        // Whereas the pure FD part alone (wildcard RHS) is satisfied by any
        // single tuple.
        let fd_only = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p)
            .build()
            .unwrap();
        assert!(check(&db, &fd_only).unwrap().is_satisfied());
    }

    #[test]
    fn pattern_scope_restricts_the_fd() {
        // CT → AC need NOT hold for NYC under φ1's first pattern tuple: the
        // three NYC tuples of D0 have three different area codes but match
        // neither pattern tuple's LHS, so they are not violations.
        let db = d0();
        let result = check(&db, &phi1()).unwrap();
        for row in result.violations().violating_rows() {
            let ct = db.get(row).unwrap()[ecfd_relation::AttrId(4)].clone();
            assert_ne!(ct, Value::str("NYC"));
        }
    }

    #[test]
    fn multi_attribute_lhs_and_rhs() {
        let schema = Schema::builder("t")
            .attr("A", DataType::Str)
            .attr("B", DataType::Str)
            .attr("C", DataType::Str)
            .attr("D", DataType::Str)
            .build();
        let phi = ECfdBuilder::new("t")
            .lhs(["A", "B"])
            .fd_rhs(["C"])
            .pattern_rhs(["D"])
            .pattern(|p| p.in_set("A", ["a1", "a2"]).not_in("D", ["bad"]))
            .build()
            .unwrap();
        let db = Relation::with_tuples(
            schema,
            [
                Tuple::from_iter(["a1", "b", "c1", "ok"]),
                Tuple::from_iter(["a1", "b", "c2", "ok"]), // FD conflict with row 0
                Tuple::from_iter(["a2", "b", "c1", "bad"]), // pattern violation on D
                Tuple::from_iter(["zz", "b", "c9", "bad"]), // outside I(tp): clean
            ],
        )
        .unwrap();
        let result = check(&db, &phi).unwrap();
        let rows = db.row_ids();
        assert_eq!(result.multi_tuple_violations(), vec![rows[0], rows[1]]);
        assert_eq!(result.single_tuple_violations(), vec![rows[2]]);
    }

    #[test]
    fn tuples_checked_is_reported() {
        let db = d0();
        assert_eq!(check(&db, &phi1()).unwrap().tuples_checked(), 6);
        assert_eq!(
            check_all(&db, &[phi1(), phi2()]).unwrap().tuples_checked(),
            12
        );
    }
}
