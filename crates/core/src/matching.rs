//! The matching semantics `t[Z] ≍ tp[Z]` and schema binding.
//!
//! Evaluating an eCFD against a relation repeatedly projects data tuples on
//! the constraint's attribute lists. [`BoundECfd`] resolves the attribute
//! names to positions ([`AttrId`]s) once, so the per-tuple work is a handful
//! of array lookups.

use crate::ecfd::ECfd;
use crate::error::Result;
use crate::pattern::PatternValue;
use ecfd_relation::{AttrId, Schema, Tuple, Value};

/// An eCFD whose attribute lists have been resolved against a concrete schema.
#[derive(Debug, Clone)]
pub struct BoundECfd<'a> {
    ecfd: &'a ECfd,
    /// Positions of the `X` attributes.
    lhs_ids: Vec<AttrId>,
    /// Positions of the `Y` attributes (embedded-FD right-hand side).
    fd_rhs_ids: Vec<AttrId>,
    /// Positions of the `Y ∪ Yp` attributes, in tableau cell order.
    rhs_ids: Vec<AttrId>,
}

impl<'a> BoundECfd<'a> {
    /// Resolves `ecfd` against `schema`, validating that the relation name and
    /// every referenced attribute exist.
    pub fn bind(ecfd: &'a ECfd, schema: &Schema) -> Result<Self> {
        ecfd.validate_against(schema)?;
        let resolve = |names: &[String]| -> Vec<AttrId> {
            names
                .iter()
                .map(|n| schema.attr_id(n).expect("validated above"))
                .collect()
        };
        let lhs_ids = resolve(ecfd.lhs());
        let fd_rhs_ids = resolve(ecfd.fd_rhs());
        let mut rhs_ids = fd_rhs_ids.clone();
        rhs_ids.extend(resolve(ecfd.pattern_rhs()));
        Ok(BoundECfd {
            ecfd,
            lhs_ids,
            fd_rhs_ids,
            rhs_ids,
        })
    }

    /// The underlying constraint.
    pub fn ecfd(&self) -> &ECfd {
        self.ecfd
    }

    /// Positions of the `X` attributes.
    pub fn lhs_ids(&self) -> &[AttrId] {
        &self.lhs_ids
    }

    /// Positions of the `Y` attributes.
    pub fn fd_rhs_ids(&self) -> &[AttrId] {
        &self.fd_rhs_ids
    }

    /// Positions of `Y ∪ Yp` in tableau cell order.
    pub fn rhs_ids(&self) -> &[AttrId] {
        &self.rhs_ids
    }

    /// Does `t[X] ≍ tp[X]` hold for pattern tuple `tp_idx`?
    ///
    /// This is the test that decides whether the constraint *applies* to the
    /// tuple (membership in the paper's `I(tp)`).
    pub fn lhs_matches(&self, tuple: &Tuple, tp_idx: usize) -> bool {
        let tp = &self.ecfd.tableau()[tp_idx];
        cells_match(&self.lhs_ids, &tp.lhs, tuple)
    }

    /// Does `t[Y, Yp] ≍ tp[Y, Yp]` hold for pattern tuple `tp_idx`?
    pub fn rhs_matches(&self, tuple: &Tuple, tp_idx: usize) -> bool {
        let tp = &self.ecfd.tableau()[tp_idx];
        cells_match(&self.rhs_ids, &tp.rhs, tuple)
    }

    /// The projection `t[X]` as a value vector (used as a grouping key when
    /// checking the embedded FD).
    pub fn lhs_key(&self, tuple: &Tuple) -> Vec<Value> {
        self.lhs_ids
            .iter()
            .map(|a| tuple.value(*a).clone())
            .collect()
    }

    /// The projection `t[Y]` as a value vector.
    pub fn fd_rhs_key(&self, tuple: &Tuple) -> Vec<Value> {
        self.fd_rhs_ids
            .iter()
            .map(|a| tuple.value(*a).clone())
            .collect()
    }
}

/// Evaluates `t[Z] ≍ tp[Z]` for a parallel list of attribute positions and
/// pattern cells (Section II, "Semantics").
pub fn cells_match(attrs: &[AttrId], cells: &[PatternValue], tuple: &Tuple) -> bool {
    debug_assert_eq!(attrs.len(), cells.len());
    attrs
        .iter()
        .zip(cells)
        .all(|(attr, cell)| cell.matches(tuple.value(*attr)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ECfdBuilder;
    use ecfd_relation::DataType;

    fn cust_schema() -> Schema {
        Schema::builder("cust")
            .attr("AC", DataType::Str)
            .attr("PN", DataType::Str)
            .attr("NM", DataType::Str)
            .attr("STR", DataType::Str)
            .attr("CT", DataType::Str)
            .attr("ZIP", DataType::Str)
            .build()
    }

    fn phi1() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.not_in("CT", ["NYC", "LI"]))
            .pattern(|p| {
                p.in_set("CT", ["Albany", "Troy", "Colonie"])
                    .constant("AC", "518")
            })
            .build()
            .unwrap()
    }

    /// The six tuples of Fig. 1.
    fn fig1_tuples() -> Vec<Tuple> {
        vec![
            Tuple::from_iter(["718", "1111111", "Mike", "Tree Ave.", "Albany", "12238"]),
            Tuple::from_iter(["518", "2222222", "Joe", "Elm Str.", "Colonie", "12205"]),
            Tuple::from_iter(["518", "2222222", "Jim", "Oak Ave.", "Troy", "12181"]),
            Tuple::from_iter(["100", "1111111", "Rick", "8th Ave.", "NYC", "10001"]),
            Tuple::from_iter(["212", "3333333", "Ben", "5th Ave.", "NYC", "10016"]),
            Tuple::from_iter(["646", "4444444", "Ian", "High St.", "NYC", "10011"]),
        ]
    }

    #[test]
    fn binding_resolves_attribute_positions() {
        let phi = phi1();
        let schema = cust_schema();
        let bound = BoundECfd::bind(&phi, &schema).unwrap();
        assert_eq!(bound.lhs_ids(), &[AttrId(4)]);
        assert_eq!(bound.fd_rhs_ids(), &[AttrId(0)]);
        assert_eq!(bound.rhs_ids(), &[AttrId(0)]);
    }

    #[test]
    fn binding_rejects_wrong_schema() {
        let phi = phi1();
        let other = Schema::builder("cust").attr("CT", DataType::Str).build();
        assert!(BoundECfd::bind(&phi, &other).is_err());
    }

    #[test]
    fn example_2_1_matching_from_the_paper() {
        // "consider t1, t4 of Fig. 1 and the first pattern tuple tp of φ1 …
        //  t1[CT, AC] ≍ tp[CT, AC] since t1[CT] ∉ {NYC, LI} and t1[AC] ≍ '_'.
        //  However, t4[CT, AC] ≇ tp[CT, AC] since t4[CT] ∈ {NYC, LI}."
        let phi = phi1();
        let schema = cust_schema();
        let bound = BoundECfd::bind(&phi, &schema).unwrap();
        let tuples = fig1_tuples();
        let t1 = &tuples[0];
        let t4 = &tuples[3];

        assert!(bound.lhs_matches(t1, 0));
        assert!(bound.rhs_matches(t1, 0));
        assert!(!bound.lhs_matches(t4, 0));

        // Second pattern tuple: t1 (Albany) matches on the LHS but its area
        // code 718 fails the RHS pattern {518} — the single-tuple violation the
        // paper uses to motivate eCFDs.
        assert!(bound.lhs_matches(t1, 1));
        assert!(!bound.rhs_matches(t1, 1));
    }

    #[test]
    fn keys_project_the_right_attributes() {
        let phi = phi1();
        let schema = cust_schema();
        let bound = BoundECfd::bind(&phi, &schema).unwrap();
        let t = &fig1_tuples()[0];
        assert_eq!(bound.lhs_key(t), vec![Value::str("Albany")]);
        assert_eq!(bound.fd_rhs_key(t), vec![Value::str("718")]);
    }

    #[test]
    fn cells_match_handles_mixed_cell_kinds() {
        let attrs = [AttrId(0), AttrId(1)];
        let cells = [
            PatternValue::not_in_set(["x"]),
            PatternValue::in_set(["a", "b"]),
        ];
        assert!(cells_match(&attrs, &cells, &Tuple::from_iter(["y", "a"])));
        assert!(!cells_match(&attrs, &cells, &Tuple::from_iter(["x", "a"])));
        assert!(!cells_match(&attrs, &cells, &Tuple::from_iter(["y", "c"])));
    }
}
