//! The MAXSS → MAXGSAT approximation-preserving reduction (Section IV).
//!
//! Because eCFD satisfiability is NP-complete, the paper considers the
//! *maximum satisfiable subset* problem (MAXSS): given `Σ`, find a largest
//! subset that is satisfiable. Section IV gives an approximation-factor
//! preserving reduction to MAXGSAT consisting of two polynomial functions:
//!
//! * `f(Σ)` builds one Boolean formula per constraint, over variables
//!   `x(i, a)` meaning "the witness tuple's attribute `A_i` equals constant
//!   `a` of the active domain `adom(A_i)`". Each formula is
//!   `χ(φ) ∧ φ_R`, where `φ_R` forces each attribute to take exactly one
//!   active-domain value, and `χ(φ)` encodes "the single-tuple instance
//!   `{t}` satisfies `φ`": for every pattern tuple, either some LHS attribute
//!   fails to match or every RHS attribute matches.
//! * `g(Φ_m)` maps a truth assignment back to a tuple `t` and returns the set
//!   of constraints actually satisfied by `{t}` — which is, by construction,
//!   at least as large as the set of satisfied formulas.
//!
//! Running any MAXGSAT approximation algorithm between `f` and `g` yields a
//! MAXSS approximation with the same factor. The paper's decision procedure on
//! top of it: if the returned subset is all of `Σ`, then `Σ` is satisfiable;
//! if it is smaller than `(1 − ε)·|Σ|` for an ε-approximation algorithm, `Σ`
//! is certainly unsatisfiable; otherwise the approximation is inconclusive.

use crate::ecfd::ECfd;
use crate::error::Result;
use crate::pattern::PatternValue;
use crate::satisfiability::{active_domains, single_tuple_satisfies};
use ecfd_logic::{
    Assignment, BoolExpr, MaxGSatInstance, MaxGSatOutcome, MaxGSatSolver, VarId, VarPool,
};
use ecfd_relation::{Schema, Tuple, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The paper's three-way conclusion drawn from an ε-approximate MAXSS answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SatisfiabilityVerdict {
    /// The approximation satisfied every constraint: `Σ` is satisfiable.
    Satisfiable,
    /// Fewer than `(1 − ε)·|Σ|` constraints were satisfied: `Σ` is
    /// unsatisfiable (assuming the solver achieves its approximation factor).
    Unsatisfiable,
    /// In between: the approximation cannot decide.
    Unknown,
}

/// The MAXGSAT encoding `f(Σ)` of a constraint set, plus the bookkeeping
/// needed to invert assignments back into tuples (`g`).
#[derive(Debug, Clone)]
pub struct MaxSsEncoding {
    schema: Schema,
    ecfds: Vec<ECfd>,
    /// Active-domain values per constrained attribute, in a fixed order.
    attr_values: BTreeMap<String, Vec<Value>>,
    /// Variable ids `x(attribute, value-index)` in the same order.
    vars: BTreeMap<String, Vec<VarId>>,
    pool: VarPool,
    instance: MaxGSatInstance,
}

/// Result of the approximate MAXSS analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxSsOutcome {
    /// Indices (into the input constraint list) of a satisfiable subset.
    pub satisfiable_subset: Vec<usize>,
    /// A single-tuple witness satisfying exactly that subset.
    pub witness: Tuple,
    /// The verdict obtained with the ε supplied to
    /// [`approximate_max_satisfiable`].
    pub verdict: SatisfiabilityVerdict,
    /// Raw MAXGSAT outcome (for diagnostics / experiments).
    pub gsat_satisfied: usize,
}

impl MaxSsEncoding {
    /// Builds `f(Σ)`.
    ///
    /// Both `f` and the inverse `g` are polynomial in the size of `Σ` and the
    /// schema, as required by an approximation-factor-preserving reduction.
    pub fn build(schema: &Schema, ecfds: &[ECfd]) -> Result<Self> {
        for e in ecfds {
            e.validate_against(schema)?;
        }
        let attr_values = active_domains(schema, ecfds);
        let mut pool = VarPool::new();
        let mut vars: BTreeMap<String, Vec<VarId>> = BTreeMap::new();
        for (attr, values) in &attr_values {
            let ids = values
                .iter()
                .map(|v| pool.fresh(format!("x({attr},{v})")))
                .collect();
            vars.insert(attr.clone(), ids);
        }

        // φ_R: each attribute takes exactly one of its active-domain values.
        let mut phi_r_parts = Vec::new();
        for (attr, ids) in &vars {
            let _ = attr;
            if ids.is_empty() {
                continue;
            }
            phi_r_parts.push(BoolExpr::or(ids.iter().map(|v| BoolExpr::var(*v))));
            for (i, a) in ids.iter().enumerate() {
                for (j, b) in ids.iter().enumerate() {
                    if i != j {
                        phi_r_parts.push(BoolExpr::var(*a).implies(BoolExpr::var(*b).not()));
                    }
                }
            }
        }
        let phi_r = BoolExpr::and(phi_r_parts);

        let encoding_ctx = EncodingCtx {
            attr_values: &attr_values,
            vars: &vars,
        };
        let formulas: Vec<BoolExpr> = ecfds
            .iter()
            .map(|ecfd| BoolExpr::and([encode_constraint(ecfd, &encoding_ctx), phi_r.clone()]))
            .collect();

        let instance = MaxGSatInstance::new(pool.len(), formulas);
        Ok(MaxSsEncoding {
            schema: schema.clone(),
            ecfds: ecfds.to_vec(),
            attr_values,
            vars,
            pool,
            instance,
        })
    }

    /// The underlying MAXGSAT instance.
    pub fn instance(&self) -> &MaxGSatInstance {
        &self.instance
    }

    /// The variable pool (for diagnostics: variable names are `x(attr,value)`).
    pub fn pool(&self) -> &VarPool {
        &self.pool
    }

    /// Total size of the encoding (sum of formula sizes) — tests assert this
    /// stays polynomial (in fact linear per constraint, quadratic in the
    /// active-domain size via `φ_R`).
    pub fn encoded_size(&self) -> usize {
        self.instance.formulas().iter().map(BoolExpr::size).sum()
    }

    /// The function `g`: converts a truth assignment into a witness tuple.
    ///
    /// The tuple's attribute `A` takes the first active-domain value whose
    /// variable is true; attributes with no true variable (possible when the
    /// assignment violates `φ_R`) and attributes not mentioned by `Σ` take an
    /// arbitrary domain value.
    pub fn tuple_from_assignment(&self, assignment: &Assignment) -> Tuple {
        let mut chosen: BTreeMap<&str, Value> = BTreeMap::new();
        for (attr, ids) in &self.vars {
            let values = &self.attr_values[attr];
            for (idx, var) in ids.iter().enumerate() {
                if assignment.get(*var) {
                    chosen.insert(attr.as_str(), values[idx].clone());
                    break;
                }
            }
        }
        Tuple::new(
            self.schema
                .attributes()
                .iter()
                .map(|a| {
                    chosen.get(a.name.as_str()).cloned().unwrap_or_else(|| {
                        a.domain
                            .fresh_value_outside(&Default::default())
                            .unwrap_or(Value::Null)
                    })
                })
                .collect(),
        )
    }

    /// The full `g(Φ_m)`: the indices of the constraints satisfied by the
    /// witness tuple derived from `assignment`, verified against the real
    /// eCFD semantics.
    pub fn satisfied_constraints(&self, assignment: &Assignment) -> Result<(Vec<usize>, Tuple)> {
        let tuple = self.tuple_from_assignment(assignment);
        let mut satisfied = Vec::new();
        for (i, ecfd) in self.ecfds.iter().enumerate() {
            if single_tuple_satisfies(&self.schema, std::slice::from_ref(ecfd), &tuple)? {
                satisfied.push(i);
            }
        }
        Ok((satisfied, tuple))
    }

    /// Runs a MAXGSAT solver on the encoding and maps the result back through
    /// `g`.
    pub fn solve(
        &self,
        solver: MaxGSatSolver,
        seed: u64,
    ) -> Result<(MaxGSatOutcome, Vec<usize>, Tuple)> {
        let outcome = self.instance.solve(solver, seed);
        let (satisfied, tuple) = self.satisfied_constraints(&outcome.assignment)?;
        Ok((outcome, satisfied, tuple))
    }
}

struct EncodingCtx<'a> {
    attr_values: &'a BTreeMap<String, Vec<Value>>,
    vars: &'a BTreeMap<String, Vec<VarId>>,
}

impl EncodingCtx<'_> {
    /// The variable asserting `t[attr] = value`, if `value` is in the active
    /// domain of `attr`.
    fn var_for(&self, attr: &str, value: &Value) -> Option<VarId> {
        let values = self.attr_values.get(attr)?;
        let idx = values.iter().position(|v| v == value)?;
        Some(self.vars[attr][idx])
    }

    /// Encodes `t[attr] ≍ cell` as a Boolean expression.
    fn encode_match(&self, attr: &str, cell: &PatternValue) -> BoolExpr {
        match cell {
            PatternValue::Wildcard => BoolExpr::t(),
            PatternValue::In(s) => BoolExpr::or(
                s.iter()
                    .filter_map(|v| self.var_for(attr, v))
                    .map(BoolExpr::var),
            ),
            PatternValue::NotIn(s) => BoolExpr::and(
                s.iter()
                    .filter_map(|v| self.var_for(attr, v))
                    .map(|v| BoolExpr::var(v).not()),
            ),
        }
    }
}

/// Encodes "the single-tuple instance `{t}` satisfies `φ`": for every pattern
/// tuple, either some LHS attribute fails to match or all RHS attributes
/// match. (The embedded FD is vacuous on a single tuple.)
fn encode_constraint(ecfd: &ECfd, ctx: &EncodingCtx<'_>) -> BoolExpr {
    let mut per_pattern = Vec::new();
    for tp in ecfd.tableau() {
        let lhs_fails = BoolExpr::or(
            ecfd.lhs()
                .iter()
                .zip(&tp.lhs)
                .map(|(attr, cell)| ctx.encode_match(attr, cell).not()),
        );
        let rhs_holds = BoolExpr::and(
            ecfd.rhs_attrs()
                .iter()
                .zip(&tp.rhs)
                .map(|(attr, cell)| ctx.encode_match(attr, cell)),
        );
        per_pattern.push(BoolExpr::or([lhs_fails, rhs_holds]));
    }
    BoolExpr::and(per_pattern)
}

/// Approximate MAXSS: runs the reduction with the given MAXGSAT solver and
/// derives the paper's three-way satisfiability verdict for the supplied
/// approximation factor `epsilon`.
pub fn approximate_max_satisfiable(
    schema: &Schema,
    ecfds: &[ECfd],
    solver: MaxGSatSolver,
    epsilon: f64,
    seed: u64,
) -> Result<MaxSsOutcome> {
    let encoding = MaxSsEncoding::build(schema, ecfds)?;
    let (gsat, satisfied, witness) = encoding.solve(solver, seed)?;
    let n = ecfds.len();
    let verdict = if satisfied.len() == n {
        SatisfiabilityVerdict::Satisfiable
    } else if (satisfied.len() as f64) < (1.0 - epsilon) * n as f64 {
        SatisfiabilityVerdict::Unsatisfiable
    } else {
        SatisfiabilityVerdict::Unknown
    };
    Ok(MaxSsOutcome {
        satisfiable_subset: satisfied,
        witness,
        verdict,
        gsat_satisfied: gsat.num_satisfied(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ECfdBuilder;
    use crate::satisfiability;
    use ecfd_relation::DataType;

    fn schema() -> Schema {
        Schema::builder("cust")
            .attr("AC", DataType::Str)
            .attr("CT", DataType::Str)
            .attr("ZIP", DataType::Str)
            .build()
    }

    fn phi1() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.not_in("CT", ["NYC", "LI"]))
            .pattern(|p| {
                p.in_set("CT", ["Albany", "Troy", "Colonie"])
                    .constant("AC", "518")
            })
            .build()
            .unwrap()
    }

    fn phi2() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| {
                p.constant("CT", "NYC")
                    .in_set("AC", ["212", "718", "646", "347", "917"])
            })
            .build()
            .unwrap()
    }

    /// Two constraints that cannot hold together: AC forced into disjoint sets.
    fn conflicting_pair() -> (ECfd, ECfd) {
        let a = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| p.in_set("AC", ["212"]))
            .build()
            .unwrap();
        let b = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| p.in_set("AC", ["518"]))
            .build()
            .unwrap();
        (a, b)
    }

    #[test]
    fn satisfiable_sets_get_a_full_subset_and_a_real_witness() {
        let s = schema();
        let ecfds = [phi1(), phi2()];
        let outcome = approximate_max_satisfiable(
            &s,
            &ecfds,
            MaxGSatSolver::LocalSearch {
                restarts: 8,
                max_flips: 300,
            },
            0.1,
            7,
        )
        .unwrap();
        assert_eq!(outcome.satisfiable_subset, vec![0, 1]);
        assert_eq!(outcome.verdict, SatisfiabilityVerdict::Satisfiable);
        assert!(
            satisfiability::single_tuple_satisfies(&s, &ecfds, &outcome.witness).unwrap(),
            "the reported witness must really satisfy the subset"
        );
    }

    #[test]
    fn conflicting_sets_lose_exactly_one_constraint() {
        let s = schema();
        let (a, b) = conflicting_pair();
        let ecfds = [a, b];
        let outcome = approximate_max_satisfiable(
            &s,
            &ecfds,
            MaxGSatSolver::LocalSearch {
                restarts: 8,
                max_flips: 300,
            },
            0.4,
            13,
        )
        .unwrap();
        assert_eq!(outcome.satisfiable_subset.len(), 1);
        // With ε = 0.4, satisfying 1 of 2 (= 0.5 ≥ 1 − ε = 0.6? no, 0.5 < 0.6)
        // lets the procedure conclude unsatisfiability.
        assert_eq!(outcome.verdict, SatisfiabilityVerdict::Unsatisfiable);
    }

    #[test]
    fn g_returns_at_least_as_many_constraints_as_satisfied_formulas() {
        // Property 3 of an approximation-factor-preserving reduction:
        // card(g(Φ_m)) ≥ card(Φ_m).
        let s = schema();
        let (a, b) = conflicting_pair();
        let ecfds = [phi1(), phi2(), a, b];
        let encoding = MaxSsEncoding::build(&s, &ecfds).unwrap();
        for seed in 0..10u64 {
            let outcome = encoding
                .instance()
                .solve(MaxGSatSolver::RandomSampling { samples: 20 }, seed);
            let (satisfied, _) = encoding.satisfied_constraints(&outcome.assignment).unwrap();
            assert!(
                satisfied.len() >= outcome.num_satisfied(),
                "seed {seed}: g returned {} constraints but {} formulas were satisfied",
                satisfied.len(),
                outcome.num_satisfied()
            );
        }
    }

    #[test]
    fn exhaustive_gsat_matches_exact_satisfiability() {
        // Property 2: the optimum of the MAXGSAT instance equals the optimum
        // of MAXSS. We verify the special case used by the decision procedure:
        // the full set is satisfiable iff the MAXGSAT optimum satisfies all
        // formulas.
        let s = schema();
        let cases: Vec<Vec<ECfd>> = vec![
            vec![phi1(), phi2()],
            {
                let (a, b) = conflicting_pair();
                vec![a, b]
            },
            {
                let (a, b) = conflicting_pair();
                vec![phi1(), a, b]
            },
        ];
        for ecfds in cases {
            let encoding = MaxSsEncoding::build(&s, &ecfds).unwrap();
            let exact_sat = satisfiability::is_satisfiable(&s, &ecfds).unwrap();
            let gsat_opt = encoding.instance().solve_exhaustive();
            assert_eq!(
                gsat_opt.num_satisfied() == ecfds.len(),
                exact_sat,
                "constraints: {ecfds:?}"
            );
        }
    }

    #[test]
    fn encoding_size_is_linear_in_the_tableau_size() {
        // Growing the tableau of a constraint must grow the encoding at most
        // linearly (the φ_R part is shared and fixed for a fixed active
        // domain). We keep the active domain fixed by reusing the same
        // constants in every pattern tuple.
        let s = schema();
        let base = |n: usize| -> ECfd {
            let mut builder = ECfdBuilder::new("cust").lhs(["CT"]).fd_rhs(["AC"]);
            for i in 0..n {
                let city = if i % 2 == 0 { "Albany" } else { "Troy" };
                builder = builder.pattern(|p| p.in_set("CT", [city]).constant("AC", "518"));
            }
            builder.build().unwrap()
        };
        let e10 = MaxSsEncoding::build(&s, &[base(10)])
            .unwrap()
            .encoded_size();
        let e20 = MaxSsEncoding::build(&s, &[base(20)])
            .unwrap()
            .encoded_size();
        let e40 = MaxSsEncoding::build(&s, &[base(40)])
            .unwrap()
            .encoded_size();
        let d1 = e20 - e10;
        let d2 = e40 - e20;
        assert!(
            d2 <= 2 * d1 + 8,
            "encoding growth should be ~linear: sizes {e10}, {e20}, {e40}"
        );
    }

    #[test]
    fn variable_names_follow_the_paper_notation() {
        let s = schema();
        let encoding = MaxSsEncoding::build(&s, &[phi2()]).unwrap();
        assert!(encoding.pool().lookup("x(CT,NYC)").is_some());
        assert!(encoding.pool().lookup("x(AC,212)").is_some());
    }

    #[test]
    fn empty_constraint_set_is_trivially_satisfiable() {
        let s = schema();
        let outcome =
            approximate_max_satisfiable(&s, &[], MaxGSatSolver::default(), 0.1, 1).unwrap();
        assert!(outcome.satisfiable_subset.is_empty());
        assert_eq!(outcome.verdict, SatisfiabilityVerdict::Satisfiable);
    }
}
