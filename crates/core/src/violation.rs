//! Violation reporting types.
//!
//! Section V of the paper represents the violation status of each tuple with
//! two Boolean attributes: `SV` ("single-tuple violation": the tuple violates
//! a pattern constraint all by itself) and `MV` ("multiple-tuple violation":
//! the tuple participates in a violation of an embedded FD together with at
//! least one other tuple). These types capture the same information at the
//! library level, with enough provenance (constraint index, pattern-tuple
//! index) to explain *why* a tuple is flagged.

use ecfd_relation::RowId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The kind of violation a tuple is involved in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ViolationKind {
    /// The tuple matches `tp[X]` but fails `tp[Y, Yp]` on its own
    /// (the paper's `SV = 1`).
    SingleTuple,
    /// The tuple agrees on `X` with another matching tuple but disagrees on
    /// `Y` — a violation of the embedded FD (the paper's `MV = 1`).
    MultiTuple,
}

/// One concrete violation: which row, which constraint, which pattern tuple,
/// and of which kind.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Violation {
    /// The offending row.
    pub row: RowId,
    /// Index of the violated constraint within the checked set (0 for a
    /// single-constraint check).
    pub constraint: usize,
    /// Index of the pattern tuple within that constraint's tableau.
    pub pattern: usize,
    /// Single- or multi-tuple violation.
    pub kind: ViolationKind,
}

/// Aggregated violation information for a relation instance, mirroring the
/// paper's `vio(D)` plus the SV / MV flags.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationSet {
    violations: Vec<Violation>,
    sv_rows: BTreeSet<RowId>,
    mv_rows: BTreeSet<RowId>,
}

impl ViolationSet {
    /// Creates an empty violation set.
    pub fn new() -> Self {
        ViolationSet::default()
    }

    /// Records one violation.
    pub fn push(&mut self, violation: Violation) {
        match violation.kind {
            ViolationKind::SingleTuple => {
                self.sv_rows.insert(violation.row);
            }
            ViolationKind::MultiTuple => {
                self.mv_rows.insert(violation.row);
            }
        }
        self.violations.push(violation);
    }

    /// All recorded violations, in recording order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Rows with `SV = 1`.
    pub fn sv_rows(&self) -> &BTreeSet<RowId> {
        &self.sv_rows
    }

    /// Rows with `MV = 1`.
    pub fn mv_rows(&self) -> &BTreeSet<RowId> {
        &self.mv_rows
    }

    /// The violation set `vio(D)`: rows with `SV = 1` or `MV = 1`.
    pub fn violating_rows(&self) -> BTreeSet<RowId> {
        self.sv_rows.union(&self.mv_rows).copied().collect()
    }

    /// True when no tuple violates any constraint.
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of rows with `SV = 1` (the paper's `DSV` count, Fig. 7(b)).
    pub fn num_sv(&self) -> usize {
        self.sv_rows.len()
    }

    /// Number of rows with `MV = 1` (the paper's `DMV` count, Fig. 7(b)).
    pub fn num_mv(&self) -> usize {
        self.mv_rows.len()
    }

    /// Number of distinct violating rows.
    pub fn num_violating_rows(&self) -> usize {
        self.violating_rows().len()
    }

    /// Violations grouped by constraint index, e.g. for per-constraint
    /// reporting in the examples.
    pub fn by_constraint(&self) -> BTreeMap<usize, Vec<&Violation>> {
        let mut out: BTreeMap<usize, Vec<&Violation>> = BTreeMap::new();
        for v in &self.violations {
            out.entry(v.constraint).or_default().push(v);
        }
        out
    }

    /// Merges another violation set into this one (used when checking a set of
    /// constraints one by one).
    pub fn merge(&mut self, other: ViolationSet) {
        for v in other.violations {
            self.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(row: u64, constraint: usize, kind: ViolationKind) -> Violation {
        Violation {
            row: RowId(row),
            constraint,
            pattern: 0,
            kind,
        }
    }

    #[test]
    fn push_classifies_rows_by_kind() {
        let mut set = ViolationSet::new();
        set.push(v(1, 0, ViolationKind::SingleTuple));
        set.push(v(2, 0, ViolationKind::MultiTuple));
        set.push(v(2, 1, ViolationKind::MultiTuple));
        set.push(v(3, 1, ViolationKind::SingleTuple));
        set.push(v(3, 1, ViolationKind::MultiTuple));

        assert_eq!(set.num_sv(), 2);
        assert_eq!(set.num_mv(), 2);
        assert_eq!(set.num_violating_rows(), 3);
        assert_eq!(set.violations().len(), 5);
        assert!(set.sv_rows().contains(&RowId(3)));
        assert!(set.mv_rows().contains(&RowId(3)));
        assert!(!set.is_empty());
    }

    #[test]
    fn by_constraint_groups() {
        let mut set = ViolationSet::new();
        set.push(v(1, 0, ViolationKind::SingleTuple));
        set.push(v(2, 1, ViolationKind::MultiTuple));
        set.push(v(3, 1, ViolationKind::SingleTuple));
        let grouped = set.by_constraint();
        assert_eq!(grouped[&0].len(), 1);
        assert_eq!(grouped[&1].len(), 2);
    }

    #[test]
    fn merge_combines_sets() {
        let mut a = ViolationSet::new();
        a.push(v(1, 0, ViolationKind::SingleTuple));
        let mut b = ViolationSet::new();
        b.push(v(2, 1, ViolationKind::MultiTuple));
        a.merge(b);
        assert_eq!(a.num_violating_rows(), 2);
    }

    #[test]
    fn empty_set_reports_clean() {
        let set = ViolationSet::new();
        assert!(set.is_empty());
        assert_eq!(set.num_sv(), 0);
        assert_eq!(set.num_mv(), 0);
        assert!(set.violating_rows().is_empty());
    }
}
