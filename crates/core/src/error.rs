//! Error type for the eCFD constraint library.

use std::fmt;

/// Result alias used throughout `ecfd-core`.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors produced while building, parsing or analysing eCFDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The constraint definition itself is malformed (e.g. `Y ∩ Yp ≠ ∅`, or a
    /// pattern tuple has the wrong arity).
    InvalidConstraint(String),
    /// A constraint refers to an attribute that the relation schema lacks.
    UnknownAttribute {
        /// Attribute named by the constraint.
        attribute: String,
        /// Relation the constraint is defined on.
        relation: String,
    },
    /// The constraint is defined on relation `expected` but was evaluated
    /// against relation `actual`.
    RelationMismatch {
        /// Relation the constraint names.
        expected: String,
        /// Relation it was applied to.
        actual: String,
    },
    /// The textual constraint syntax could not be parsed.
    Parse {
        /// Byte offset in the input where the error was detected.
        position: usize,
        /// Human-readable message.
        message: String,
    },
    /// A static analysis was asked to do something outside its supported
    /// envelope (e.g. exact search over an instance that is too large).
    AnalysisBudgetExceeded(String),
    /// Error bubbled up from the storage layer.
    Relation(ecfd_relation::RelationError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConstraint(msg) => write!(f, "invalid constraint: {msg}"),
            CoreError::UnknownAttribute {
                attribute,
                relation,
            } => write!(
                f,
                "constraint refers to attribute `{attribute}` which does not exist in relation `{relation}`"
            ),
            CoreError::RelationMismatch { expected, actual } => write!(
                f,
                "constraint is defined on relation `{expected}` but was applied to `{actual}`"
            ),
            CoreError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            CoreError::AnalysisBudgetExceeded(msg) => {
                write!(f, "analysis budget exceeded: {msg}")
            }
            CoreError::Relation(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ecfd_relation::RelationError> for CoreError {
    fn from(e: ecfd_relation::RelationError) -> Self {
        CoreError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = CoreError::UnknownAttribute {
            attribute: "AC".into(),
            relation: "cust".into(),
        };
        assert!(e.to_string().contains("AC"));
        assert!(e.to_string().contains("cust"));

        let e = CoreError::Parse {
            position: 12,
            message: "expected `}`".into(),
        };
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn relation_errors_convert_and_chain() {
        let inner = ecfd_relation::RelationError::UnknownRelation("cust".into());
        let e: CoreError = inner.into();
        assert!(matches!(e, CoreError::Relation(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
