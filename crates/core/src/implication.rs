//! Exact implication analysis of eCFDs (Section III of the paper).
//!
//! The implication problem — given `Σ` and `φ`, does every instance that
//! satisfies `Σ` also satisfy `φ`? — is coNP-complete for eCFDs
//! (Proposition 3.2). Its complement has a *two-tuple small model property*:
//! `Σ ⊭ φ` iff there is an instance `I` with at most two tuples such that
//! `I ⊨ Σ` and `I ⊭ φ`. The exact procedure here searches for such a
//! counterexample over the active domains of `Σ ∪ {φ}`, with *two* fresh
//! representatives per attribute outside the mentioned constants (two, not
//! one, because the counterexample may need two tuples that agree on `X` but
//! differ on an unconstrained `Y` attribute).

use crate::ecfd::ECfd;
use crate::error::{CoreError, Result};
use crate::satisfaction;
use ecfd_relation::{Domain, Relation, Schema, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Options controlling the exact implication search.
#[derive(Debug, Clone, Copy)]
pub struct ImplicationOptions {
    /// Maximum number of candidate instances to evaluate before giving up with
    /// [`CoreError::AnalysisBudgetExceeded`].
    pub node_budget: u64,
}

impl Default for ImplicationOptions {
    fn default() -> Self {
        ImplicationOptions {
            node_budget: 20_000_000,
        }
    }
}

/// Outcome of the implication analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImplicationOutcome {
    /// `Σ ⊨ φ`: every instance satisfying `Σ` satisfies `φ`.
    Implied,
    /// `Σ ⊭ φ`; the contained instance (one or two tuples) satisfies `Σ` but
    /// violates `φ`.
    NotImplied(Vec<Tuple>),
}

impl ImplicationOutcome {
    /// True for [`ImplicationOutcome::Implied`].
    pub fn is_implied(&self) -> bool {
        matches!(self, ImplicationOutcome::Implied)
    }

    /// The counterexample instance, if any.
    pub fn counterexample(&self) -> Option<&[Tuple]> {
        match self {
            ImplicationOutcome::Implied => None,
            ImplicationOutcome::NotImplied(ts) => Some(ts),
        }
    }
}

/// Does `Σ ⊨ φ`? Uses default options.
pub fn implies(schema: &Schema, sigma: &[ECfd], phi: &ECfd) -> Result<bool> {
    Ok(check_implication(schema, sigma, phi, ImplicationOptions::default())?.is_implied())
}

/// Exact implication analysis with explicit options.
pub fn check_implication(
    schema: &Schema,
    sigma: &[ECfd],
    phi: &ECfd,
    options: ImplicationOptions,
) -> Result<ImplicationOutcome> {
    for ecfd in sigma.iter().chain(std::iter::once(phi)) {
        ecfd.validate_against(schema)?;
    }

    // Active domains over Σ ∪ {φ} with two fresh representatives.
    let mut all: Vec<ECfd> = sigma.to_vec();
    all.push(phi.clone());
    let domains = two_fresh_active_domains(schema, &all);

    // The candidate tuples only need to vary on the attributes mentioned by
    // Σ ∪ {φ}; all other attributes can be fixed arbitrarily (they cannot
    // influence satisfaction of any constraint).
    let attrs: Vec<(String, Vec<Value>)> = domains.into_iter().collect();

    let mut budget = options.node_budget;
    // Enumerate candidate pairs (t1, t2); the single-tuple counterexample case
    // is covered by t1 == t2 (duplicate rows change nothing for eCFD
    // semantics, so {t, t} behaves like {t}).
    let mut assignment1: BTreeMap<String, Value> = BTreeMap::new();
    let outcome = search_pair(schema, sigma, phi, &attrs, 0, &mut assignment1, &mut budget)?;
    Ok(outcome.unwrap_or(ImplicationOutcome::Implied))
}

/// Removes constraints and pattern tuples that are implied by the rest of the
/// set — the redundancy-elimination optimisation motivated in Section III
/// ("A natural optimization strategy for cleaning data with eCFDs is by
/// removing redundancies"). Returns the retained constraints.
pub fn minimal_cover(schema: &Schema, ecfds: &[ECfd]) -> Result<Vec<ECfd>> {
    minimal_cover_with(schema, ecfds, ImplicationOptions::default())
}

/// [`minimal_cover`] with an explicit search budget per implication check.
pub fn minimal_cover_with(
    schema: &Schema,
    ecfds: &[ECfd],
    options: ImplicationOptions,
) -> Result<Vec<ECfd>> {
    let mut retained: Vec<ECfd> = ecfds.to_vec();
    // Try to drop whole constraints first, in reverse order so that earlier
    // (presumably more fundamental) constraints are preferred.
    let mut idx = retained.len();
    while idx > 0 {
        idx -= 1;
        let candidate = retained[idx].clone();
        let rest: Vec<ECfd> = retained
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, e)| e.clone())
            .collect();
        if check_implication(schema, &rest, &candidate, options)?.is_implied() {
            retained.remove(idx);
        }
    }
    Ok(retained)
}

fn two_fresh_active_domains(schema: &Schema, ecfds: &[ECfd]) -> BTreeMap<String, Vec<Value>> {
    let mut constants: BTreeMap<String, BTreeSet<Value>> = BTreeMap::new();
    for ecfd in ecfds {
        for (attr, consts) in ecfd.constants_per_attribute() {
            constants.entry(attr).or_default().extend(consts);
        }
    }
    let mut out = BTreeMap::new();
    for (attr, consts) in constants {
        let domain = schema
            .attr_id(&attr)
            .and_then(|id| schema.attribute(id))
            .map(|a| a.domain.clone())
            .unwrap_or(Domain::Unbounded(ecfd_relation::DataType::Str));
        let mut values: Vec<Value> = consts
            .iter()
            .filter(|v| domain.contains(v))
            .cloned()
            .collect();
        let mut exclude = consts.clone();
        for _ in 0..2 {
            if let Some(fresh) = domain.fresh_value_outside(&exclude) {
                exclude.insert(fresh.clone());
                values.push(fresh);
            }
        }
        out.insert(attr, values);
    }
    out
}

fn complete_tuple(schema: &Schema, assignment: &BTreeMap<String, Value>) -> Tuple {
    Tuple::new(
        schema
            .attributes()
            .iter()
            .map(|a| {
                assignment.get(&a.name).cloned().unwrap_or_else(|| {
                    a.domain
                        .fresh_value_outside(&BTreeSet::new())
                        .unwrap_or(Value::Null)
                })
            })
            .collect(),
    )
}

/// Enumerates assignments for the first tuple; for each, enumerates the second.
fn search_pair(
    schema: &Schema,
    sigma: &[ECfd],
    phi: &ECfd,
    attrs: &[(String, Vec<Value>)],
    depth: usize,
    assignment1: &mut BTreeMap<String, Value>,
    budget: &mut u64,
) -> Result<Option<ImplicationOutcome>> {
    if depth == attrs.len() {
        let t1 = complete_tuple(schema, assignment1);
        // Prune: {t1} must satisfy Σ for any superset instance to do so —
        // adding a second tuple can only add violations, never remove them,
        // because eCFD satisfaction is an intersection of per-tuple and
        // per-pair conditions.
        let single = Relation::with_tuples(schema.clone(), [t1.clone()])?;
        if !satisfaction::satisfies_all(&single, sigma)? {
            return Ok(None);
        }
        // Single-tuple counterexample?
        if !satisfaction::satisfies_all(&single, std::slice::from_ref(phi))? {
            return Ok(Some(ImplicationOutcome::NotImplied(vec![t1])));
        }
        let mut assignment2: BTreeMap<String, Value> = BTreeMap::new();
        return search_second(schema, sigma, phi, attrs, 0, &t1, &mut assignment2, budget);
    }
    let (attr, values) = &attrs[depth];
    if values.is_empty() {
        return Ok(None);
    }
    for value in values {
        if *budget == 0 {
            return Err(CoreError::AnalysisBudgetExceeded(
                "implication search exceeded its node budget".into(),
            ));
        }
        *budget -= 1;
        assignment1.insert(attr.clone(), value.clone());
        if let Some(found) = search_pair(schema, sigma, phi, attrs, depth + 1, assignment1, budget)?
        {
            return Ok(Some(found));
        }
        assignment1.remove(attr);
    }
    Ok(None)
}

#[allow(clippy::too_many_arguments)]
fn search_second(
    schema: &Schema,
    sigma: &[ECfd],
    phi: &ECfd,
    attrs: &[(String, Vec<Value>)],
    depth: usize,
    t1: &Tuple,
    assignment2: &mut BTreeMap<String, Value>,
    budget: &mut u64,
) -> Result<Option<ImplicationOutcome>> {
    if depth == attrs.len() {
        let t2 = complete_tuple(schema, assignment2);
        let db = Relation::with_tuples(schema.clone(), [t1.clone(), t2.clone()])?;
        if satisfaction::satisfies_all(&db, sigma)?
            && !satisfaction::satisfies_all(&db, std::slice::from_ref(phi))?
        {
            return Ok(Some(ImplicationOutcome::NotImplied(vec![t1.clone(), t2])));
        }
        return Ok(None);
    }
    let (attr, values) = &attrs[depth];
    if values.is_empty() {
        return Ok(None);
    }
    for value in values {
        if *budget == 0 {
            return Err(CoreError::AnalysisBudgetExceeded(
                "implication search exceeded its node budget".into(),
            ));
        }
        *budget -= 1;
        assignment2.insert(attr.clone(), value.clone());
        if let Some(found) = search_second(
            schema,
            sigma,
            phi,
            attrs,
            depth + 1,
            t1,
            assignment2,
            budget,
        )? {
            return Ok(Some(found));
        }
        assignment2.remove(attr);
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ECfdBuilder;
    use ecfd_relation::DataType;

    fn schema() -> Schema {
        Schema::builder("cust")
            .attr("AC", DataType::Str)
            .attr("CT", DataType::Str)
            .attr("ZIP", DataType::Str)
            .build()
    }

    fn phi1() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.not_in("CT", ["NYC", "LI"]))
            .pattern(|p| {
                p.in_set("CT", ["Albany", "Troy", "Colonie"])
                    .constant("AC", "518")
            })
            .build()
            .unwrap()
    }

    #[test]
    fn constraint_implies_itself_and_weaker_variants() {
        let s = schema();
        let phi = phi1();
        assert!(implies(&s, std::slice::from_ref(&phi), &phi).unwrap());

        // A weaker constraint: only requires the binding for Albany.
        let weaker = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.in_set("CT", ["Albany"]).constant("AC", "518"))
            .build()
            .unwrap();
        assert!(implies(&s, std::slice::from_ref(&phi), &weaker).unwrap());
        // …but not vice versa: the weaker constraint says nothing about Troy.
        assert!(!implies(&s, &[weaker], &phi).unwrap());
    }

    #[test]
    fn nothing_follows_from_the_empty_set_except_trivialities() {
        let s = schema();
        assert!(!implies(&s, &[], &phi1()).unwrap());

        // A tautological constraint (all-wildcard single pattern on a single
        // tuple FD X → X) is implied by anything.
        let trivial = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["CT"])
            .pattern(|p| p)
            .build()
            .unwrap();
        assert!(implies(&s, &[], &trivial).unwrap());
    }

    #[test]
    fn fd_style_transitivity_does_not_hold_conditionally() {
        // CT → AC on non-NYC cities and AC → ZIP everywhere do NOT imply
        // CT → ZIP everywhere (NYC rows are unconstrained by the first).
        let s = schema();
        let ct_ac = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.not_in("CT", ["NYC"]))
            .build()
            .unwrap();
        let ac_zip = ECfdBuilder::new("cust")
            .lhs(["AC"])
            .fd_rhs(["ZIP"])
            .pattern(|p| p)
            .build()
            .unwrap();
        let ct_zip_everywhere = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["ZIP"])
            .pattern(|p| p)
            .build()
            .unwrap();
        let ct_zip_conditional = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["ZIP"])
            .pattern(|p| p.not_in("CT", ["NYC"]))
            .build()
            .unwrap();
        assert!(!implies(&s, &[ct_ac.clone(), ac_zip.clone()], &ct_zip_everywhere).unwrap());
        // The conditional version (restricted to non-NYC) IS implied:
        // transitivity holds within the scope of the first constraint.
        assert!(implies(&s, &[ct_ac, ac_zip], &ct_zip_conditional).unwrap());
    }

    #[test]
    fn pattern_subsumption_is_detected() {
        let s = schema();
        // "AC must be one of {212, 718}" implies "AC must be one of
        // {212, 718, 646}" for NYC rows.
        let tight = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| p.constant("CT", "NYC").in_set("AC", ["212", "718"]))
            .build()
            .unwrap();
        let loose = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| p.constant("CT", "NYC").in_set("AC", ["212", "718", "646"]))
            .build()
            .unwrap();
        assert!(implies(&s, std::slice::from_ref(&tight), &loose).unwrap());
        assert!(!implies(&s, &[loose], &tight).unwrap());
    }

    #[test]
    fn counterexample_instances_are_returned_and_valid() {
        let s = schema();
        let phi = phi1();
        let outcome = check_implication(&s, &[], &phi, ImplicationOptions::default()).unwrap();
        let witness = outcome.counterexample().expect("φ1 is not implied by ∅");
        assert!(!witness.is_empty() && witness.len() <= 2);
        let db = Relation::with_tuples(s.clone(), witness.iter().cloned()).unwrap();
        assert!(!satisfaction::satisfies_all(&db, std::slice::from_ref(&phi)).unwrap());
    }

    #[test]
    fn two_tuple_counterexamples_are_found_when_needed() {
        // An unconditional FD CT → AC needs two tuples to be violated; check
        // that the search finds a two-tuple counterexample when the implying
        // set is empty.
        let s = schema();
        let fd = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p)
            .build()
            .unwrap();
        let outcome = check_implication(&s, &[], &fd, ImplicationOptions::default()).unwrap();
        let witness = outcome.counterexample().expect("an FD is not implied by ∅");
        assert_eq!(witness.len(), 2, "violating a bare FD requires two tuples");
    }

    #[test]
    fn budget_is_enforced() {
        let s = schema();
        let err = check_implication(
            &s,
            &[phi1()],
            &phi1(),
            ImplicationOptions { node_budget: 1 },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::AnalysisBudgetExceeded(_)));
    }

    #[test]
    fn minimal_cover_drops_redundant_constraints() {
        let s = schema();
        let phi = phi1();
        let weaker = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.in_set("CT", ["Albany"]).constant("AC", "518"))
            .build()
            .unwrap();
        let cover = minimal_cover(&s, &[phi.clone(), weaker.clone()]).unwrap();
        assert_eq!(cover, vec![phi.clone()]);

        // Nothing to drop when constraints are independent.
        let independent = ECfdBuilder::new("cust")
            .lhs(["AC"])
            .fd_rhs(["ZIP"])
            .pattern(|p| p)
            .build()
            .unwrap();
        let cover = minimal_cover(&s, &[phi.clone(), independent.clone()]).unwrap();
        assert_eq!(cover.len(), 2);
    }
}
