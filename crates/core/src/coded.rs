//! Pattern cells pre-resolved to dictionary codes.
//!
//! Evaluating `t[A] ≍ tp[A]` over [`PatternValue`] cells compares [`Value`]s
//! — for string sets that means hashing / comparing string payloads once per
//! tuple per constraint. A [`CodedCell`] is the same cell with every constant
//! interned through a shared [`Dictionary`] once, at constraint-registration
//! time, so the per-tuple membership test becomes a lookup in a sorted slice
//! of 64-bit [`Code`]s.
//!
//! Coded cells are only meaningful relative to the dictionary that interned
//! them (see the `ecfd_relation::columnar` docs); detectors keep one
//! dictionary per compiled constraint set and use it for pattern constants
//! and data alike, which makes code equality decide value equality.

use crate::ecfd::ECfd;
use crate::pattern::PatternValue;
use ecfd_relation::{Code, Dictionary, Value};

/// Below this set size a linear scan beats binary search on 64-bit codes.
const LINEAR_SCAN_MAX: usize = 8;

/// A sorted, deduplicated slice of codes with a size-adaptive membership
/// test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeSet {
    codes: Box<[Code]>,
}

impl CodeSet {
    /// Interns `values` and builds the sorted code set.
    pub fn intern<'a>(values: impl IntoIterator<Item = &'a Value>, dict: &mut Dictionary) -> Self {
        let mut codes: Vec<Code> = values.into_iter().map(|v| dict.encode(v)).collect();
        codes.sort_unstable();
        codes.dedup();
        CodeSet {
            codes: codes.into_boxed_slice(),
        }
    }

    /// Whether `code` is in the set.
    #[inline]
    pub fn contains(&self, code: Code) -> bool {
        if self.codes.len() <= LINEAR_SCAN_MAX {
            self.codes.contains(&code)
        } else {
            self.codes.binary_search(&code).is_ok()
        }
    }

    /// Number of codes in the set.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

/// One pattern cell with its constants pre-resolved to codes: the coded
/// counterpart of [`PatternValue`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodedCell {
    /// The wildcard `_`: matches every code.
    Wildcard,
    /// A finite set `S`: matches exactly the listed codes.
    In(CodeSet),
    /// A complement set `S̄`: matches everything except the listed codes.
    NotIn(CodeSet),
}

impl CodedCell {
    /// Interns a pattern cell's constants through `dict`.
    pub fn intern(cell: &PatternValue, dict: &mut Dictionary) -> Self {
        match cell {
            PatternValue::Wildcard => CodedCell::Wildcard,
            PatternValue::In(s) => CodedCell::In(CodeSet::intern(s, dict)),
            PatternValue::NotIn(s) => CodedCell::NotIn(CodeSet::intern(s, dict)),
        }
    }

    /// The coded matching semantics `t[A] ≍ tp[A]`: equivalent to
    /// [`PatternValue::matches`] on the decoded value, provided `code` was
    /// issued by the same dictionary.
    #[inline]
    pub fn matches(&self, code: Code) -> bool {
        match self {
            CodedCell::Wildcard => true,
            CodedCell::In(s) => s.contains(code),
            CodedCell::NotIn(s) => !s.contains(code),
        }
    }
}

/// The coded pattern cells of one single-pattern constraint: `lhs[i]`
/// constrains the `i`-th `X` attribute, `rhs[i]` the `i`-th attribute of
/// `Y ∪ Yp` in tableau cell order — mirroring
/// [`BoundECfd`](crate::matching::BoundECfd)'s attribute-id lists.
#[derive(Debug, Clone)]
pub struct CodedSingle {
    /// Coded cells over the `X` attributes.
    pub lhs: Vec<CodedCell>,
    /// Coded cells over `Y ∪ Yp`, in tableau cell order.
    pub rhs: Vec<CodedCell>,
}

impl CodedSingle {
    /// Interns the (sole) pattern tuple of a single-pattern constraint.
    /// Detectors call this once per compiled constraint set, at registration
    /// time.
    pub fn intern(single: &ECfd, dict: &mut Dictionary) -> Self {
        let tp = &single.tableau()[0];
        CodedSingle {
            lhs: tp.lhs.iter().map(|c| CodedCell::intern(c, dict)).collect(),
            rhs: tp.rhs.iter().map(|c| CodedCell::intern(c, dict)).collect(),
        }
    }

    /// Does `t[X] ≍ tp[X]` hold for a row's codes over the `X` attribute
    /// columns? `codes` yields the row's code per `X` attribute, parallel to
    /// `self.lhs`.
    #[inline]
    pub fn lhs_matches(&self, mut codes: impl Iterator<Item = Code>) -> bool {
        self.lhs.iter().all(|cell| {
            let code = codes.next().expect("one code per lhs cell");
            cell.matches(code)
        })
    }

    /// Does `t[Y, Yp] ≍ tp[Y, Yp]` hold for a row's codes over the rhs
    /// attribute columns?
    #[inline]
    pub fn rhs_matches(&self, mut codes: impl Iterator<Item = Code>) -> bool {
        self.rhs.iter().all(|cell| {
            let code = codes.next().expect("one code per rhs cell");
            cell.matches(code)
        })
    }
}

/// Interns every single-pattern constraint of a split set — the
/// registration-time step that turns all pattern-constant comparisons into
/// integer comparisons.
pub fn intern_singles(singles: &[ECfd], dict: &mut Dictionary) -> Vec<CodedSingle> {
    singles
        .iter()
        .map(|s| CodedSingle::intern(s, dict))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ECfdBuilder;

    #[test]
    fn coded_cells_agree_with_value_cells() {
        let mut dict = Dictionary::new();
        let cells = [
            PatternValue::wildcard(),
            PatternValue::in_set(["NYC", "LI"]),
            PatternValue::not_in_set(["NYC", "LI"]),
            PatternValue::constant("518"),
            PatternValue::in_set([518i64, 212]),
        ];
        let coded: Vec<CodedCell> = cells
            .iter()
            .map(|c| CodedCell::intern(c, &mut dict))
            .collect();
        let probes = [
            Value::str("NYC"),
            Value::str("LI"),
            Value::str("Albany"),
            Value::str("518"),
            Value::int(518),
            Value::int(999),
            Value::Null,
            Value::bool(true),
        ];
        for probe in &probes {
            let code = dict.encode(probe);
            for (cell, coded_cell) in cells.iter().zip(&coded) {
                assert_eq!(
                    cell.matches(probe),
                    coded_cell.matches(code),
                    "cell {cell:?} probe {probe:?}"
                );
            }
        }
    }

    #[test]
    fn membership_survives_large_sets() {
        let mut dict = Dictionary::new();
        let values: Vec<Value> = (0..40).map(|i| Value::str(format!("v{i}"))).collect();
        let set = CodeSet::intern(&values, &mut dict);
        assert_eq!(set.len(), 40);
        assert!(!set.is_empty());
        for v in &values {
            assert!(set.contains(dict.encode(v)));
        }
        assert!(!set.contains(dict.encode(&Value::str("missing"))));
    }

    #[test]
    fn coded_single_matches_like_the_bound_constraint() {
        use crate::matching::BoundECfd;
        use ecfd_relation::{DataType, Schema, Tuple};
        let schema = Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build();
        let phi = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.not_in("CT", ["NYC"]).constant("AC", "518"))
            .build()
            .unwrap();
        let bound = BoundECfd::bind(&phi, &schema).unwrap();
        let mut dict = Dictionary::new();
        let coded = CodedSingle::intern(&phi, &mut dict);
        for (ct, ac) in [
            ("Albany", "518"),
            ("Albany", "718"),
            ("NYC", "518"),
            ("NYC", "212"),
        ] {
            let tuple = Tuple::from_iter([ct, ac]);
            let codes = dict.encode_tuple(&tuple);
            assert_eq!(
                bound.lhs_matches(&tuple, 0),
                coded.lhs_matches(bound.lhs_ids().iter().map(|a| codes[a.index()])),
                "lhs {ct}/{ac}"
            );
            assert_eq!(
                bound.rhs_matches(&tuple, 0),
                coded.rhs_matches(bound.rhs_ids().iter().map(|a| codes[a.index()])),
                "rhs {ct}/{ac}"
            );
        }
    }
}
