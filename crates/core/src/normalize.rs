//! Normal forms for sets of eCFDs.
//!
//! Two normalisation steps from the paper:
//!
//! * **Splitting** (Section V, "Encoding of eCFDs"): "we can always split an
//!   eCFD with multiple patterns into a set of eCFDs with only a single
//!   pattern tuple". The detection encoding assigns one `CID` per pattern
//!   tuple, so [`split_patterns`] performs that rewriting. Each produced
//!   single-pattern constraint remembers which original constraint and which
//!   pattern tuple it came from, so violations can be reported against the
//!   user's original constraints.
//! * **Merging** ([`merge_compatible`]): the inverse convenience operation —
//!   constraints sharing relation, `X`, `Y` and `Yp` can be combined into one
//!   constraint whose tableau is the union, which is how users typically write
//!   them (cf. φ1 in the paper which carries two pattern tuples).

use crate::ecfd::ECfd;
use serde::{Deserialize, Serialize};

/// A single-pattern constraint produced by [`split_patterns`], with provenance
/// back to the original constraint set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SinglePattern {
    /// The single-pattern eCFD.
    pub ecfd: ECfd,
    /// Index of the originating constraint in the input slice.
    pub source_constraint: usize,
    /// Index of the originating pattern tuple within that constraint.
    pub source_pattern: usize,
}

/// Splits every constraint into single-pattern-tuple constraints.
///
/// Semantics are preserved: `I ⊨ φ` iff `I` satisfies every single-pattern
/// constraint obtained from `φ`, because the satisfaction condition of
/// Section II quantifies over pattern tuples independently.
pub fn split_patterns(ecfds: &[ECfd]) -> Vec<SinglePattern> {
    let mut out = Vec::new();
    for (ci, ecfd) in ecfds.iter().enumerate() {
        for (pi, tp) in ecfd.tableau().iter().enumerate() {
            let single = ecfd
                .with_tableau(vec![tp.clone()])
                .expect("a tableau slice of a valid eCFD is valid");
            out.push(SinglePattern {
                ecfd: single,
                source_constraint: ci,
                source_pattern: pi,
            });
        }
    }
    out
}

/// Merges constraints that share relation, `X`, `Y` and `Yp` into single
/// constraints whose tableaux are concatenated (first-seen order preserved).
pub fn merge_compatible(ecfds: &[ECfd]) -> Vec<ECfd> {
    let mut out: Vec<ECfd> = Vec::new();
    for ecfd in ecfds {
        if let Some(existing) = out.iter_mut().find(|e| {
            e.relation() == ecfd.relation()
                && e.lhs() == ecfd.lhs()
                && e.fd_rhs() == ecfd.fd_rhs()
                && e.pattern_rhs() == ecfd.pattern_rhs()
        }) {
            let mut tableau = existing.tableau().to_vec();
            tableau.extend(ecfd.tableau().iter().cloned());
            *existing = existing
                .with_tableau(tableau)
                .expect("concatenating valid tableaux stays valid");
        } else {
            out.push(ecfd.clone());
        }
    }
    out
}

/// Total number of pattern tuples across a constraint set — the paper's
/// "|Tp|" complexity measure ("each tuple itself is a constraint").
pub fn total_pattern_tuples(ecfds: &[ECfd]) -> usize {
    ecfds.iter().map(ECfd::tableau_size).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ECfdBuilder;
    use crate::satisfaction;
    use ecfd_relation::{DataType, Relation, Schema, Tuple};

    fn phi1() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.not_in("CT", ["NYC", "LI"]))
            .pattern(|p| {
                p.in_set("CT", ["Albany", "Troy", "Colonie"])
                    .constant("AC", "518")
            })
            .build()
            .unwrap()
    }

    fn phi2() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| p.constant("CT", "NYC").in_set("AC", ["212", "718"]))
            .build()
            .unwrap()
    }

    #[test]
    fn split_produces_one_constraint_per_pattern_tuple() {
        let split = split_patterns(&[phi1(), phi2()]);
        assert_eq!(split.len(), 3);
        assert!(split.iter().all(|s| s.ecfd.tableau_size() == 1));
        assert_eq!(split[0].source_constraint, 0);
        assert_eq!(split[0].source_pattern, 0);
        assert_eq!(split[1].source_constraint, 0);
        assert_eq!(split[1].source_pattern, 1);
        assert_eq!(split[2].source_constraint, 1);
        assert_eq!(split[2].source_pattern, 0);
    }

    #[test]
    fn splitting_preserves_satisfaction() {
        let schema = Schema::builder("cust")
            .attr("AC", DataType::Str)
            .attr("CT", DataType::Str)
            .build();
        let phi = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.not_in("CT", ["NYC", "LI"]))
            .pattern(|p| p.in_set("CT", ["Albany"]).constant("AC", "518"))
            .build()
            .unwrap();
        let instances = [
            vec![("518", "Albany"), ("212", "NYC")],
            vec![("718", "Albany")],
            vec![("315", "Utica"), ("607", "Utica")],
            vec![],
        ];
        for rows in instances {
            let db = Relation::with_tuples(
                schema.clone(),
                rows.iter().map(|(ac, ct)| Tuple::from_iter([*ac, *ct])),
            )
            .unwrap();
            let original = satisfaction::check(&db, &phi).unwrap().is_satisfied();
            let split = split_patterns(std::slice::from_ref(&phi));
            let split_ecfds: Vec<ECfd> = split.into_iter().map(|s| s.ecfd).collect();
            let after = satisfaction::check_all(&db, &split_ecfds)
                .unwrap()
                .is_satisfied();
            assert_eq!(original, after, "rows {rows:?}");
        }
    }

    #[test]
    fn merge_recombines_split_constraints() {
        let original = vec![phi1(), phi2()];
        let split = split_patterns(&original);
        let split_ecfds: Vec<ECfd> = split.into_iter().map(|s| s.ecfd).collect();
        let merged = merge_compatible(&split_ecfds);
        assert_eq!(merged, original);
    }

    #[test]
    fn merge_keeps_incompatible_constraints_apart() {
        let other_rel = ECfdBuilder::new("orders")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p)
            .build()
            .unwrap();
        let merged = merge_compatible(&[phi1(), other_rel.clone()]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[1], other_rel);
    }

    #[test]
    fn total_pattern_tuples_counts_tableau_rows() {
        assert_eq!(total_pattern_tuples(&[phi1(), phi2()]), 3);
        assert_eq!(total_pattern_tuples(&[]), 0);
    }
}
