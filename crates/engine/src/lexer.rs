//! SQL tokeniser.

use crate::error::{EngineError, Result};

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are recognised case-insensitively by
    /// the parser; the original spelling is preserved here).
    Ident(String),
    /// String literal (single-quoted, `''` escapes a quote).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
}

impl Token {
    /// True if the token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenises SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let chars: Vec<char> = sql.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // `--` starts a comment that runs to end of line.
                if chars.get(i + 1) == Some(&'-') {
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(EngineError::Lex {
                        position: i,
                        message: "unexpected `!` (did you mean `!=`?)".into(),
                    });
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'>') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(c) => {
                            s.push(*c);
                            i += 1;
                        }
                        None => {
                            return Err(EngineError::Lex {
                                position: i,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let value = text.parse::<i64>().map_err(|_| EngineError::Lex {
                    position: start,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                tokens.push(Token::Int(value));
            }
            c if c.is_alphabetic() || c == '_' || c == '@' || c == '"' => {
                // Double-quoted identifiers are allowed and preserved verbatim.
                if c == '"' {
                    let mut s = String::new();
                    i += 1;
                    loop {
                        match chars.get(i) {
                            Some('"') => {
                                i += 1;
                                break;
                            }
                            Some(c) => {
                                s.push(*c);
                                i += 1;
                            }
                            None => {
                                return Err(EngineError::Lex {
                                    position: i,
                                    message: "unterminated quoted identifier".into(),
                                })
                            }
                        }
                    }
                    tokens.push(Token::Ident(s));
                } else {
                    let start = i;
                    while i < chars.len()
                        && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '@')
                    {
                        i += 1;
                    }
                    tokens.push(Token::Ident(chars[start..i].iter().collect()));
                }
            }
            other => {
                return Err(EngineError::Lex {
                    position: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenises_a_select_statement() {
        let toks =
            tokenize("SELECT t.AC, COUNT(*) FROM cust t WHERE t.CT = 'NYC' -- comment\n").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::Dot));
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Str("NYC".into())));
        // The trailing comment is dropped.
        assert!(!toks
            .iter()
            .any(|t| matches!(t, Token::Ident(s) if s == "comment")));
    }

    #[test]
    fn operators_and_numbers() {
        let toks = tokenize("a <> 1 AND b >= 20 OR c != 3 AND d <= 4 AND e < 5 AND f > 6").unwrap();
        assert_eq!(toks.iter().filter(|t| **t == Token::NotEq).count(), 2);
        assert!(toks.contains(&Token::GtEq));
        assert!(toks.contains(&Token::LtEq));
        assert!(toks.contains(&Token::Int(20)));
    }

    #[test]
    fn string_escapes_and_quoted_identifiers() {
        let toks = tokenize("'it''s' \"Weird Col\"").unwrap();
        assert_eq!(toks[0], Token::Str("it's".into()));
        assert_eq!(toks[1], Token::Ident("Weird Col".into()));
    }

    #[test]
    fn at_sign_is_an_identifier_character() {
        // The blanking constant '@' appears as a string literal in the
        // generated queries, but '@' inside identifiers must not break the
        // lexer either.
        let toks = tokenize("SELECT '@' AS blank FROM t").unwrap();
        assert!(toks.contains(&Token::Str("@".into())));
    }

    #[test]
    fn lex_errors() {
        assert!(matches!(
            tokenize("SELECT 'oops"),
            Err(EngineError::Lex { .. })
        ));
        assert!(matches!(tokenize("a ! b"), Err(EngineError::Lex { .. })));
        assert!(matches!(tokenize("a ? b"), Err(EngineError::Lex { .. })));
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let toks = tokenize("select").unwrap();
        assert!(toks[0].is_keyword("SELECT"));
        assert!(toks[0].is_keyword("select"));
        assert!(!toks[0].is_keyword("FROM"));
    }
}
