//! Statement execution: queries (SELECT) and updates (DML / DDL).

use crate::ast::*;
use crate::error::{EngineError, Result};
use crate::eval::{evaluate, Binding, Env};
use crate::parser::{parse_script, parse_statement};
use crate::result::ResultSet;
use ecfd_relation::{Attribute, Catalog, DataType, Relation, RowId, Schema, Tuple, Value};
use std::collections::{HashMap, HashSet};

/// The SQL engine. Stateless: every call takes the catalog to run against.
#[derive(Debug, Default, Clone, Copy)]
pub struct Engine;

impl Engine {
    /// Creates an engine.
    pub fn new() -> Self {
        Engine
    }

    /// Runs a SELECT statement and returns its result set.
    pub fn query(&self, catalog: &Catalog, sql: &str) -> Result<ResultSet> {
        match parse_statement(sql)? {
            Statement::Select(select) => execute_select(catalog, &select, None),
            other => Err(EngineError::Semantic(format!(
                "expected a SELECT statement, got {other:?}"
            ))),
        }
    }

    /// Runs any statement; DML/DDL statements mutate the catalog. Returns the
    /// number of affected rows (result rows for SELECT).
    pub fn execute(&self, catalog: &mut Catalog, sql: &str) -> Result<usize> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(catalog, &stmt)
    }

    /// Runs a `;`-separated script, returning the affected-row count per
    /// statement.
    pub fn run_script(&self, catalog: &mut Catalog, sql: &str) -> Result<Vec<usize>> {
        let stmts = parse_script(sql)?;
        stmts
            .iter()
            .map(|s| self.execute_statement(catalog, s))
            .collect()
    }

    /// Executes an already-parsed statement.
    pub fn execute_statement(&self, catalog: &mut Catalog, stmt: &Statement) -> Result<usize> {
        match stmt {
            Statement::Select(select) => Ok(execute_select(catalog, select, None)?.len()),
            Statement::Insert {
                table,
                columns,
                source,
            } => execute_insert(catalog, table, columns.as_deref(), source),
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => execute_update(catalog, table, assignments, where_clause.as_ref()),
            Statement::Delete {
                table,
                where_clause,
            } => execute_delete(catalog, table, where_clause.as_ref()),
            Statement::CreateTable { name, columns } => {
                let schema = schema_from_defs(name, columns)?;
                catalog.create(Relation::new(schema))?;
                Ok(0)
            }
            Statement::DropTable { name } => {
                catalog.drop_table(name)?;
                Ok(0)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SELECT execution
// ---------------------------------------------------------------------------

/// Materialised FROM item: binding name, column names and rows.
struct Source {
    name: String,
    columns: Vec<String>,
    rows: Vec<Tuple>,
}

fn exists_subquery(catalog: &Catalog, select: &Select, outer: &Env<'_>) -> Result<bool> {
    let result = execute_select_bounded(catalog, select, Some(outer), Some(1))?;
    Ok(!result.is_empty())
}

/// Executes a SELECT; `outer` supplies correlation bindings for subqueries.
pub fn execute_select(
    catalog: &Catalog,
    select: &Select,
    outer: Option<&Env<'_>>,
) -> Result<ResultSet> {
    execute_select_bounded(catalog, select, outer, None)
}

/// Like [`execute_select`] but stops after `row_limit` output rows (used for
/// `EXISTS`, which only needs to know whether any row exists). The early stop
/// is only taken on the non-aggregating, non-sorting, non-distinct path — the
/// others need all rows anyway.
fn execute_select_bounded(
    catalog: &Catalog,
    select: &Select,
    outer: Option<&Env<'_>>,
    row_limit: Option<usize>,
) -> Result<ResultSet> {
    let sources = resolve_sources(catalog, &select.from, outer)?;
    let aggregating = !select.group_by.is_empty()
        || select
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || select
            .having
            .as_ref()
            .map(Expr::contains_aggregate)
            .unwrap_or(false);
    let can_stop_early =
        !aggregating && !select.distinct && select.order_by.is_empty() && select.limit.is_none();

    // Enumerate the cross product of the FROM items, keeping combinations that
    // pass the WHERE clause.
    let mut combos: Vec<Vec<usize>> = Vec::new();
    let mut indices = vec![0usize; sources.len()];
    let empty_from = sources.is_empty();
    let any_empty = sources.iter().any(|s| s.rows.is_empty());
    if empty_from {
        // SELECT without FROM: a single pseudo-row.
        let env = make_env(&sources, &[], outer, None);
        if eval_predicate(catalog, &env, select.where_clause.as_ref())? {
            combos.push(Vec::new());
        }
    } else if !any_empty {
        'outer: loop {
            let env = make_env(&sources, &indices, outer, None);
            if eval_predicate(catalog, &env, select.where_clause.as_ref())? {
                combos.push(indices.clone());
                if can_stop_early {
                    if let Some(limit) = row_limit {
                        if combos.len() >= limit {
                            break 'outer;
                        }
                    }
                }
            }
            // Advance the odometer.
            let mut level = sources.len();
            loop {
                if level == 0 {
                    break 'outer;
                }
                level -= 1;
                indices[level] += 1;
                if indices[level] < sources[level].rows.len() {
                    break;
                }
                indices[level] = 0;
            }
        }
    }

    let columns = output_columns(&sources, &select.items);

    let mut keyed_rows: Vec<(Vec<Value>, Tuple)> = Vec::new();
    if aggregating {
        // Group combinations by the GROUP BY key.
        let mut groups: HashMap<Vec<Value>, (Vec<usize>, i64)> = HashMap::new();
        let mut group_order: Vec<Vec<Value>> = Vec::new();
        for combo in &combos {
            let env = make_env(&sources, combo, outer, None);
            let key: Vec<Value> = select
                .group_by
                .iter()
                .map(|e| evaluate(catalog, &env, e, &exists_subquery))
                .collect::<Result<_>>()?;
            match groups.get_mut(&key) {
                Some((_, count)) => *count += 1,
                None => {
                    group_order.push(key.clone());
                    groups.insert(key, (combo.clone(), 1));
                }
            }
        }
        // A global aggregate over zero rows still produces one group.
        if select.group_by.is_empty() && groups.is_empty() {
            group_order.push(Vec::new());
            groups.insert(Vec::new(), (vec![0; sources.len()], 0));
        }
        for key in group_order {
            let (combo, count) = &groups[&key];
            // For an empty global group there is no representative row; guard
            // by checking sources are non-empty before building bindings.
            let representative: Vec<usize> = if *count == 0 {
                Vec::new()
            } else {
                combo.clone()
            };
            let env = make_env(&sources, &representative, outer, Some(*count));
            if let Some(having) = &select.having {
                if !evaluate(catalog, &env, having, &exists_subquery)?.is_truthy() {
                    continue;
                }
            }
            let row = project(catalog, &env, &sources, &select.items, &representative)?;
            let order_key = order_keys(catalog, &env, &select.order_by)?;
            keyed_rows.push((order_key, row));
        }
    } else {
        for combo in &combos {
            let env = make_env(&sources, combo, outer, None);
            let row = project(catalog, &env, &sources, &select.items, combo)?;
            let order_key = order_keys(catalog, &env, &select.order_by)?;
            keyed_rows.push((order_key, row));
        }
    }

    if select.distinct {
        let mut seen = HashSet::new();
        keyed_rows.retain(|(_, row)| seen.insert(row.clone()));
    }
    if !select.order_by.is_empty() {
        let descending: Vec<bool> = select.order_by.iter().map(|k| k.descending).collect();
        keyed_rows.sort_by(|(a, _), (b, _)| {
            for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                let ord = x.cmp(y);
                let ord = if descending.get(i).copied().unwrap_or(false) {
                    ord.reverse()
                } else {
                    ord
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    let mut rows: Vec<Tuple> = keyed_rows.into_iter().map(|(_, r)| r).collect();
    if let Some(limit) = select.limit {
        rows.truncate(limit);
    }
    if let Some(limit) = row_limit {
        rows.truncate(limit);
    }
    Ok(ResultSet::new(columns, rows))
}

fn resolve_sources(
    catalog: &Catalog,
    from: &[TableRef],
    outer: Option<&Env<'_>>,
) -> Result<Vec<Source>> {
    let mut sources = Vec::with_capacity(from.len());
    for item in from {
        match item {
            TableRef::Table { name, alias } => {
                let relation = catalog
                    .get(name)
                    .map_err(|_| EngineError::UnknownTable(name.clone()))?;
                sources.push(Source {
                    name: alias.clone().unwrap_or_else(|| name.clone()),
                    columns: relation
                        .schema()
                        .attr_names()
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                    rows: relation.to_tuples(),
                });
            }
            TableRef::Subquery { query, alias } => {
                let result = execute_select(catalog, query, outer)?;
                sources.push(Source {
                    name: alias.clone(),
                    columns: result.columns().to_vec(),
                    rows: result.into_rows(),
                });
            }
        }
    }
    Ok(sources)
}

fn make_env<'a>(
    sources: &'a [Source],
    indices: &[usize],
    outer: Option<&'a Env<'a>>,
    group_count: Option<i64>,
) -> Env<'a> {
    let bindings = sources
        .iter()
        .zip(indices)
        .map(|(source, idx)| Binding {
            name: source.name.clone(),
            columns: source.columns.clone(),
            tuple: &source.rows[*idx],
        })
        .collect();
    Env {
        bindings,
        parent: outer,
        group_count,
    }
}

fn eval_predicate(catalog: &Catalog, env: &Env<'_>, predicate: Option<&Expr>) -> Result<bool> {
    match predicate {
        None => Ok(true),
        Some(p) => Ok(evaluate(catalog, env, p, &exists_subquery)?.is_truthy()),
    }
}

fn output_columns(sources: &[Source], items: &[SelectItem]) -> Vec<String> {
    let mut out = Vec::new();
    for item in items {
        match item {
            SelectItem::Wildcard => {
                for s in sources {
                    out.extend(s.columns.iter().cloned());
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                if let Some(s) = sources.iter().find(|s| &s.name == q) {
                    out.extend(s.columns.iter().cloned());
                }
            }
            SelectItem::Expr { expr, alias } => out.push(match alias {
                Some(a) => a.clone(),
                None => match expr {
                    Expr::Column { name, .. } => name.clone(),
                    Expr::CountStar => "COUNT".to_string(),
                    _ => "?column?".to_string(),
                },
            }),
        }
    }
    out
}

fn project(
    catalog: &Catalog,
    env: &Env<'_>,
    sources: &[Source],
    items: &[SelectItem],
    combo: &[usize],
) -> Result<Tuple> {
    let mut values = Vec::new();
    for item in items {
        match item {
            SelectItem::Wildcard => {
                for (source, idx) in sources.iter().zip(combo) {
                    values.extend(source.rows[*idx].values().iter().cloned());
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                if let Some((source, idx)) = sources
                    .iter()
                    .zip(combo)
                    .find(|(source, _)| &source.name == q)
                {
                    values.extend(source.rows[*idx].values().iter().cloned());
                } else {
                    return Err(EngineError::UnknownTable(q.clone()));
                }
            }
            SelectItem::Expr { expr, .. } => {
                values.push(evaluate(catalog, env, expr, &exists_subquery)?);
            }
        }
    }
    Ok(Tuple::new(values))
}

fn order_keys(catalog: &Catalog, env: &Env<'_>, keys: &[OrderKey]) -> Result<Vec<Value>> {
    keys.iter()
        .map(|k| evaluate(catalog, env, &k.expr, &exists_subquery))
        .collect()
}

// ---------------------------------------------------------------------------
// DML / DDL execution
// ---------------------------------------------------------------------------

fn schema_from_defs(name: &str, columns: &[ColumnDef]) -> Result<Schema> {
    let mut attrs = Vec::with_capacity(columns.len());
    for c in columns {
        let ty = match c.type_name.as_str() {
            "INT" | "INTEGER" | "BIGINT" => DataType::Int,
            "STR" | "TEXT" | "VARCHAR" | "CHAR" | "STRING" => DataType::Str,
            "BOOL" | "BOOLEAN" => DataType::Bool,
            other => {
                return Err(EngineError::Semantic(format!(
                    "unsupported column type `{other}`"
                )))
            }
        };
        attrs.push(Attribute::new(c.name.clone(), ty));
    }
    Schema::try_new(name, attrs).map_err(EngineError::from)
}

/// Coerces a value into the declared type of an attribute where a sensible
/// coercion exists (ints ↔ bools, anything → NULL stays NULL).
fn coerce(value: Value, ty: DataType) -> Value {
    match (ty, &value) {
        (DataType::Bool, Value::Int(i)) => Value::Bool(*i != 0),
        (DataType::Int, Value::Bool(b)) => Value::Int(i64::from(*b)),
        _ => value,
    }
}

fn execute_insert(
    catalog: &mut Catalog,
    table: &str,
    columns: Option<&[String]>,
    source: &InsertSource,
) -> Result<usize> {
    // Materialise the rows to insert before taking a mutable borrow.
    let input_rows: Vec<Vec<Value>> = match source {
        InsertSource::Values(rows) => {
            let env = Env::empty();
            rows.iter()
                .map(|row| {
                    row.iter()
                        .map(|e| evaluate(catalog, &env, e, &exists_subquery))
                        .collect()
                })
                .collect::<Result<_>>()?
        }
        InsertSource::Query(query) => execute_select(catalog, query, None)?
            .into_rows()
            .into_iter()
            .map(Tuple::into_values)
            .collect(),
    };

    let relation = catalog
        .get_mut(table)
        .map_err(|_| EngineError::UnknownTable(table.to_string()))?;
    let schema = relation.schema().clone();
    let target_positions: Vec<usize> = match columns {
        Some(cols) => cols
            .iter()
            .map(|c| {
                schema
                    .attr_id(c)
                    .map(|id| id.index())
                    .ok_or_else(|| EngineError::UnknownColumn(c.clone()))
            })
            .collect::<Result<_>>()?,
        None => (0..schema.arity()).collect(),
    };

    let mut inserted = 0;
    for row in input_rows {
        if row.len() != target_positions.len() {
            return Err(EngineError::Semantic(format!(
                "INSERT provides {} values for {} columns",
                row.len(),
                target_positions.len()
            )));
        }
        let mut values = vec![Value::Null; schema.arity()];
        for (value, pos) in row.into_iter().zip(&target_positions) {
            values[*pos] = coerce(value, schema.attributes()[*pos].data_type());
        }
        relation.insert(Tuple::new(values))?;
        inserted += 1;
    }
    Ok(inserted)
}

/// Evaluates `WHERE` for every row of `table`, returning the matching row ids.
fn matching_rows(
    catalog: &Catalog,
    table: &str,
    where_clause: Option<&Expr>,
) -> Result<Vec<RowId>> {
    let relation = catalog
        .get(table)
        .map_err(|_| EngineError::UnknownTable(table.to_string()))?;
    let columns: Vec<String> = relation
        .schema()
        .attr_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut out = Vec::new();
    for (row_id, tuple) in relation.iter() {
        let env = Env {
            bindings: vec![Binding {
                name: table.to_string(),
                columns: columns.clone(),
                tuple,
            }],
            parent: None,
            group_count: None,
        };
        if eval_predicate(catalog, &env, where_clause)? {
            out.push(row_id);
        }
    }
    Ok(out)
}

fn execute_update(
    catalog: &mut Catalog,
    table: &str,
    assignments: &[(String, Expr)],
    where_clause: Option<&Expr>,
) -> Result<usize> {
    // Phase 1 (immutable): find the rows and compute the new values.
    let targets = matching_rows(catalog, table, where_clause)?;
    let relation = catalog.get(table)?;
    let schema = relation.schema().clone();
    let columns: Vec<String> = schema.attr_names().iter().map(|s| s.to_string()).collect();

    let mut planned: Vec<(RowId, Vec<(usize, Value)>)> = Vec::with_capacity(targets.len());
    for row_id in targets {
        let tuple = relation.get(row_id).expect("row id from matching_rows");
        let env = Env {
            bindings: vec![Binding {
                name: table.to_string(),
                columns: columns.clone(),
                tuple,
            }],
            parent: None,
            group_count: None,
        };
        let mut updates = Vec::with_capacity(assignments.len());
        for (col, expr) in assignments {
            let pos = schema
                .attr_id(col)
                .map(|id| id.index())
                .ok_or_else(|| EngineError::UnknownColumn(col.clone()))?;
            let value = evaluate(catalog, &env, expr, &exists_subquery)?;
            updates.push((pos, coerce(value, schema.attributes()[pos].data_type())));
        }
        planned.push((row_id, updates));
    }

    // Phase 2 (mutable): apply.
    let relation = catalog.get_mut(table)?;
    let count = planned.len();
    for (row_id, updates) in planned {
        for (pos, value) in updates {
            relation.update_value(row_id, ecfd_relation::AttrId(pos), value)?;
        }
    }
    Ok(count)
}

fn execute_delete(
    catalog: &mut Catalog,
    table: &str,
    where_clause: Option<&Expr>,
) -> Result<usize> {
    let targets = matching_rows(catalog, table, where_clause)?;
    let relation = catalog.get_mut(table)?;
    let count = targets.len();
    for row_id in targets {
        relation.delete(row_id)?;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Catalog {
        let mut catalog = Catalog::new();
        let cust = Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .attr("ZIP", DataType::Str)
            .build();
        catalog
            .create(
                Relation::with_tuples(
                    cust,
                    [
                        Tuple::from_iter(["Albany", "518", "12238"]),
                        Tuple::from_iter(["NYC", "212", "10001"]),
                        Tuple::from_iter(["NYC", "718", "10002"]),
                        Tuple::from_iter(["Troy", "518", "12181"]),
                        Tuple::from_iter(["NYC", "212", "10003"]),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        let enc = Schema::builder("enc")
            .attr("CID", DataType::Int)
            .attr("CTL", DataType::Int)
            .build();
        catalog
            .create(
                Relation::with_tuples(
                    enc,
                    [
                        Tuple::from_iter([Value::int(1), Value::int(2)]),
                        Tuple::from_iter([Value::int(2), Value::int(1)]),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        let tctl = Schema::builder("TCTL")
            .attr("CID", DataType::Int)
            .attr("V", DataType::Str)
            .build();
        catalog
            .create(
                Relation::with_tuples(
                    tctl,
                    [
                        Tuple::from_iter([Value::int(1), Value::str("NYC")]),
                        Tuple::from_iter([Value::int(2), Value::str("Albany")]),
                        Tuple::from_iter([Value::int(2), Value::str("Troy")]),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        catalog
    }

    #[test]
    fn filter_and_projection() {
        let catalog = setup();
        let engine = Engine::new();
        let rs = engine
            .query(&catalog, "SELECT CT, ZIP FROM cust WHERE AC = '518'")
            .unwrap();
        assert_eq!(rs.columns(), &["CT".to_string(), "ZIP".to_string()]);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.value(0, "CT"), Some(&Value::str("Albany")));
    }

    #[test]
    fn cross_join_with_aliases() {
        let catalog = setup();
        let engine = Engine::new();
        let rs = engine
            .query(
                &catalog,
                "SELECT t.CT, c.CID FROM cust t, enc c WHERE c.CID = 1 AND t.AC = '518'",
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn correlated_exists_and_not_exists() {
        let catalog = setup();
        let engine = Engine::new();
        // Cities present in TCTL under constraint 2.
        let rs = engine
            .query(
                &catalog,
                "SELECT DISTINCT t.CT FROM cust t WHERE EXISTS (SELECT x.V FROM TCTL x WHERE x.CID = 2 AND x.V = t.CT)",
            )
            .unwrap();
        let mut cities: Vec<String> = rs
            .rows()
            .iter()
            .map(|r| r.values()[0].as_str().unwrap().to_string())
            .collect();
        cities.sort();
        assert_eq!(cities, vec!["Albany", "Troy"]);

        let rs = engine
            .query(
                &catalog,
                "SELECT DISTINCT t.CT FROM cust t WHERE NOT EXISTS (SELECT x.V FROM TCTL x WHERE x.CID = 2 AND x.V = t.CT)",
            )
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.value(0, "CT"), Some(&Value::str("NYC")));
    }

    #[test]
    fn group_by_having_count() {
        let catalog = setup();
        let engine = Engine::new();
        let rs = engine
            .query(
                &catalog,
                "SELECT CT, COUNT(*) AS n FROM cust GROUP BY CT HAVING COUNT(*) > 1 ORDER BY CT",
            )
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.value(0, "CT"), Some(&Value::str("NYC")));
        assert_eq!(rs.value(0, "n"), Some(&Value::int(3)));
    }

    #[test]
    fn group_by_multiple_keys_and_case_blanking() {
        let catalog = setup();
        let engine = Engine::new();
        // The macro-style query of the paper: blank out AC when CTL <= 0.
        let rs = engine
            .query(
                &catalog,
                "SELECT DISTINCT c.CID, (CASE WHEN c.CTL > 0 THEN t.CT ELSE '@' END) AS CTL \
                 FROM cust t, enc c ORDER BY c.CID, CTL",
            )
            .unwrap();
        // CID 1 has CTL = 2 > 0 → city names; CID 2 has CTL = 1 > 0 → city names.
        assert!(rs.len() >= 2);
        assert!(rs.rows().iter().all(|r| r.values()[1] != Value::str("@")));

        let rs = engine
            .query(
                &catalog,
                "SELECT (CASE WHEN c.CTL > 5 THEN t.CT ELSE '@' END) AS X FROM cust t, enc c GROUP BY (CASE WHEN c.CTL > 5 THEN t.CT ELSE '@' END)",
            )
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.value(0, "X"), Some(&Value::str("@")));
    }

    #[test]
    fn aggregate_without_group_by_counts_all_rows() {
        let catalog = setup();
        let engine = Engine::new();
        let rs = engine.query(&catalog, "SELECT COUNT(*) FROM cust").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::int(5)));
        let rs = engine
            .query(&catalog, "SELECT COUNT(*) FROM cust WHERE CT = 'Nowhere'")
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::int(0)));
    }

    #[test]
    fn order_by_distinct_limit_and_derived_tables() {
        let catalog = setup();
        let engine = Engine::new();
        let rs = engine
            .query(
                &catalog,
                "SELECT CT FROM (SELECT DISTINCT CT FROM cust) d ORDER BY CT DESC LIMIT 2",
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.value(0, "CT"), Some(&Value::str("Troy")));
        assert_eq!(rs.value(1, "CT"), Some(&Value::str("NYC")));
    }

    #[test]
    fn wildcard_projection() {
        let catalog = setup();
        let engine = Engine::new();
        let rs = engine
            .query(&catalog, "SELECT * FROM enc ORDER BY CID")
            .unwrap();
        assert_eq!(rs.columns(), &["CID".to_string(), "CTL".to_string()]);
        assert_eq!(rs.len(), 2);
        let rs = engine
            .query(
                &catalog,
                "SELECT c.* FROM enc c, cust t WHERE t.CT = 'Albany'",
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.columns().len(), 2);
    }

    #[test]
    fn insert_update_delete_round_trip() {
        let mut catalog = setup();
        let engine = Engine::new();
        let n = engine
            .execute(
                &mut catalog,
                "INSERT INTO cust (CT, AC, ZIP) VALUES ('LI', '516', '11501'), ('Utica', '315', '13501')",
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(catalog.get("cust").unwrap().len(), 7);

        let n = engine
            .execute(&mut catalog, "UPDATE cust SET AC = '917' WHERE CT = 'NYC'")
            .unwrap();
        assert_eq!(n, 3);
        let rs = engine
            .query(&catalog, "SELECT COUNT(*) FROM cust WHERE AC = '917'")
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::int(3)));

        let n = engine
            .execute(&mut catalog, "DELETE FROM cust WHERE CT = 'NYC'")
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(catalog.get("cust").unwrap().len(), 4);
    }

    #[test]
    fn insert_from_select_and_partial_columns() {
        let mut catalog = setup();
        let engine = Engine::new();
        engine
            .execute(&mut catalog, "CREATE TABLE vio (CT STR, AC STR)")
            .unwrap();
        let n = engine
            .execute(
                &mut catalog,
                "INSERT INTO vio SELECT CT, AC FROM cust WHERE CT = 'NYC'",
            )
            .unwrap();
        assert_eq!(n, 3);
        // Partial column insert: ZIP defaults to NULL.
        engine
            .execute(&mut catalog, "CREATE TABLE extra (CT STR, AC STR, ZIP STR)")
            .unwrap();
        engine
            .execute(&mut catalog, "INSERT INTO extra (CT) VALUES ('X')")
            .unwrap();
        let rs = engine
            .query(&catalog, "SELECT AC FROM extra WHERE CT = 'X'")
            .unwrap();
        assert!(rs.rows()[0].values()[0].is_null());
    }

    #[test]
    fn create_table_types_bool_coercion_and_drop() {
        let mut catalog = Catalog::new();
        let engine = Engine::new();
        engine
            .execute(
                &mut catalog,
                "CREATE TABLE flags (ID INT, SV BOOL, MV BOOL)",
            )
            .unwrap();
        engine
            .execute(&mut catalog, "INSERT INTO flags VALUES (1, 0, 1)")
            .unwrap();
        let rs = engine
            .query(&catalog, "SELECT SV, MV FROM flags WHERE ID = 1")
            .unwrap();
        assert_eq!(rs.value(0, "SV"), Some(&Value::bool(false)));
        assert_eq!(rs.value(0, "MV"), Some(&Value::bool(true)));
        // UPDATE with an integer literal also coerces.
        engine
            .execute(&mut catalog, "UPDATE flags SET SV = 1 WHERE ID = 1")
            .unwrap();
        let rs = engine.query(&catalog, "SELECT SV FROM flags").unwrap();
        assert_eq!(rs.value(0, "SV"), Some(&Value::bool(true)));

        engine.execute(&mut catalog, "DROP TABLE flags").unwrap();
        assert!(!catalog.contains("flags"));
        assert!(engine.execute(&mut catalog, "DROP TABLE flags").is_err());
    }

    #[test]
    fn run_script_executes_in_order() {
        let mut catalog = Catalog::new();
        let engine = Engine::new();
        let counts = engine
            .run_script(
                &mut catalog,
                "CREATE TABLE t (A INT);\n INSERT INTO t VALUES (1), (2);\n SELECT * FROM t;",
            )
            .unwrap();
        assert_eq!(counts, vec![0, 2, 2]);
    }

    #[test]
    fn errors_for_unknown_tables_columns_and_wrong_statement_kind() {
        let mut catalog = setup();
        let engine = Engine::new();
        assert!(matches!(
            engine.query(&catalog, "SELECT * FROM nope"),
            Err(EngineError::UnknownTable(_))
        ));
        assert!(matches!(
            engine.query(&catalog, "SELECT nope FROM cust"),
            Err(EngineError::UnknownColumn(_))
        ));
        assert!(matches!(
            engine.query(&catalog, "UPDATE cust SET AC = '1'"),
            Err(EngineError::Semantic(_))
        ));
        assert!(matches!(
            engine.execute(&mut catalog, "INSERT INTO cust (CT) VALUES ('a', 'b')"),
            Err(EngineError::Semantic(_))
        ));
        assert!(matches!(
            engine.execute(&mut catalog, "UPDATE cust SET nope = 1"),
            Err(EngineError::UnknownColumn(_))
        ));
    }

    #[test]
    fn empty_tables_and_empty_from() {
        let mut catalog = Catalog::new();
        let engine = Engine::new();
        engine
            .execute(&mut catalog, "CREATE TABLE empty (A INT)")
            .unwrap();
        let rs = engine.query(&catalog, "SELECT A FROM empty").unwrap();
        assert!(rs.is_empty());
        let rs = engine
            .query(&catalog, "SELECT COUNT(*) FROM empty")
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::int(0)));
        // SELECT without FROM.
        let rs = engine.query(&catalog, "SELECT 1 + 2 AS x").unwrap();
        assert_eq!(rs.scalar(), Some(&Value::int(3)));
    }
}
