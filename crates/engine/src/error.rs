//! Error type for the SQL engine.

use std::fmt;

/// Result alias used throughout `ecfd-engine`.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors produced while lexing, parsing, planning or executing SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The SQL text could not be tokenised.
    Lex {
        /// Byte position of the offending character.
        position: usize,
        /// Human-readable message.
        message: String,
    },
    /// The token stream could not be parsed.
    Parse {
        /// Index of the offending token.
        token_index: usize,
        /// Human-readable message.
        message: String,
    },
    /// A column reference could not be resolved.
    UnknownColumn(String),
    /// A column reference is ambiguous between two FROM items.
    AmbiguousColumn(String),
    /// A table alias or name was not found.
    UnknownTable(String),
    /// A function is not supported.
    UnknownFunction(String),
    /// An expression was evaluated on operands of incompatible types.
    Type(String),
    /// The statement is structurally invalid for execution (e.g. aggregates in
    /// the WHERE clause, wrong VALUES arity).
    Semantic(String),
    /// Error bubbled up from the storage layer.
    Relation(ecfd_relation::RelationError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            EngineError::Parse {
                token_index,
                message,
            } => write!(f, "parse error near token {token_index}: {message}"),
            EngineError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            EngineError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            EngineError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            EngineError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            EngineError::Type(msg) => write!(f, "type error: {msg}"),
            EngineError::Semantic(msg) => write!(f, "invalid statement: {msg}"),
            EngineError::Relation(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ecfd_relation::RelationError> for EngineError {
    fn from(e: ecfd_relation::RelationError) -> Self {
        EngineError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EngineError::UnknownColumn("t.AC".into())
            .to_string()
            .contains("t.AC"));
        assert!(EngineError::Parse {
            token_index: 3,
            message: "expected FROM".into()
        }
        .to_string()
        .contains("FROM"));
        let e: EngineError = ecfd_relation::RelationError::UnknownRelation("x".into()).into();
        assert!(matches!(e, EngineError::Relation(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
