//! Query result sets.

use ecfd_relation::{Tuple, Value};
use std::fmt;

/// The result of a SELECT: column names plus rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResultSet {
    columns: Vec<String>,
    rows: Vec<Tuple>,
}

impl ResultSet {
    /// Creates a result set.
    pub fn new(columns: Vec<String>, rows: Vec<Tuple>) -> Self {
        ResultSet { columns, rows }
    }

    /// Output column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Result rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Consumes the result set and returns its rows.
    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of an output column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The value at `(row, column-name)`, if both exist.
    pub fn value(&self, row: usize, column: &str) -> Option<&Value> {
        let col = self.column_index(column)?;
        self.rows.get(row).map(|r| &r.values()[col])
    }

    /// The single value of a single-row, single-column result (e.g. a
    /// `SELECT COUNT(*)`), if the shape matches.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.columns.len() == 1 {
            Some(&self.rows[0].values()[0])
        } else {
            None
        }
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultSet {
        ResultSet::new(
            vec!["CT".into(), "N".into()],
            vec![
                Tuple::from_iter([Value::str("NYC"), Value::int(3)]),
                Tuple::from_iter([Value::str("Albany"), Value::int(1)]),
            ],
        )
    }

    #[test]
    fn accessors() {
        let rs = sample();
        assert_eq!(rs.len(), 2);
        assert!(!rs.is_empty());
        assert_eq!(rs.column_index("N"), Some(1));
        assert_eq!(rs.value(0, "CT"), Some(&Value::str("NYC")));
        assert_eq!(rs.value(5, "CT"), None);
        assert_eq!(rs.value(0, "nope"), None);
        assert!(rs.scalar().is_none());
    }

    #[test]
    fn scalar_shape() {
        let rs = ResultSet::new(vec!["c".into()], vec![Tuple::from_iter([Value::int(7)])]);
        assert_eq!(rs.scalar(), Some(&Value::int(7)));
    }

    #[test]
    fn display_renders_rows() {
        let text = sample().to_string();
        assert!(text.contains("CT | N"));
        assert!(text.contains("NYC | 3"));
    }
}
