//! Scalar expression evaluation with SQL-ish three-valued logic.

use crate::ast::{BinaryOp, Expr};
use crate::error::{EngineError, Result};
use ecfd_relation::{Catalog, Tuple, Value};

/// A row binding: the current tuple of one FROM item, addressable by its
/// alias and column names.
#[derive(Debug, Clone)]
pub struct Binding<'a> {
    /// Alias (or table name) this FROM item is referred to by.
    pub name: String,
    /// Column names, in tuple order.
    pub columns: Vec<String>,
    /// The current row.
    pub tuple: &'a Tuple,
}

/// Evaluation environment: the row bindings of the current query level plus an
/// optional parent environment for correlated subqueries, and the group row
/// count when evaluating aggregate contexts (`HAVING COUNT(*) > 1`).
#[derive(Debug, Clone, Default)]
pub struct Env<'a> {
    /// Bindings of the current query level.
    pub bindings: Vec<Binding<'a>>,
    /// Enclosing environment (for correlated subqueries).
    pub parent: Option<&'a Env<'a>>,
    /// Number of rows in the current group, when aggregating.
    pub group_count: Option<i64>,
}

impl<'a> Env<'a> {
    /// An environment with no bindings (literal-only evaluation).
    pub fn empty() -> Self {
        Env::default()
    }

    /// Resolves a column reference to a value.
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<Value> {
        match self.try_resolve(qualifier, name)? {
            Some(v) => Ok(v),
            None => match self.parent {
                Some(parent) => parent.resolve(qualifier, name),
                None => Err(EngineError::UnknownColumn(match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.to_string(),
                })),
            },
        }
    }

    /// Resolves within this level only; `Ok(None)` means "not found here".
    fn try_resolve(&self, qualifier: Option<&str>, name: &str) -> Result<Option<Value>> {
        match qualifier {
            Some(q) => {
                for b in &self.bindings {
                    if b.name == q {
                        return match b.columns.iter().position(|c| c == name) {
                            Some(idx) => Ok(Some(b.tuple.values()[idx].clone())),
                            None => Err(EngineError::UnknownColumn(format!("{q}.{name}"))),
                        };
                    }
                }
                Ok(None)
            }
            None => {
                let mut found: Option<Value> = None;
                for b in &self.bindings {
                    if let Some(idx) = b.columns.iter().position(|c| c == name) {
                        if found.is_some() {
                            return Err(EngineError::AmbiguousColumn(name.to_string()));
                        }
                        found = Some(b.tuple.values()[idx].clone());
                    }
                }
                Ok(found)
            }
        }
    }
}

/// Callback used to evaluate `EXISTS (subquery)`: returns whether the subquery
/// produces at least one row under the given outer environment.
///
/// The executor supplies this; keeping it a function pointer avoids a circular
/// type dependency between evaluation and execution.
pub type ExistsFn<'a> = &'a dyn Fn(&Catalog, &crate::ast::Select, &Env<'_>) -> Result<bool>;

/// Evaluates an expression to a value.
pub fn evaluate(
    catalog: &Catalog,
    env: &Env<'_>,
    expr: &Expr,
    exists_fn: ExistsFn<'_>,
) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { qualifier, name } => env.resolve(qualifier.as_deref(), name),
        Expr::CountStar => env
            .group_count
            .map(Value::Int)
            .ok_or_else(|| EngineError::Semantic("COUNT(*) outside an aggregate context".into())),
        Expr::Not(e) => {
            let v = evaluate(catalog, env, e, exists_fn)?;
            Ok(match v {
                Value::Null => Value::Null,
                other => Value::Bool(!other.is_truthy()),
            })
        }
        Expr::IsNull { expr, negated } => {
            let v = evaluate(catalog, env, expr, exists_fn)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = evaluate(catalog, env, expr, exists_fn)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            for item in list {
                let w = evaluate(catalog, env, item, exists_fn)?;
                if !w.is_null() && w == v {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::Exists { subquery, negated } => {
            let any = exists_fn(catalog, subquery, env)?;
            Ok(Value::Bool(any != *negated))
        }
        Expr::Case {
            branches,
            else_result,
        } => {
            for (cond, result) in branches {
                if evaluate(catalog, env, cond, exists_fn)?.is_truthy() {
                    return evaluate(catalog, env, result, exists_fn);
                }
            }
            match else_result {
                Some(e) => evaluate(catalog, env, e, exists_fn),
                None => Ok(Value::Null),
            }
        }
        Expr::Function { name, args } => {
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(evaluate(catalog, env, a, exists_fn)?);
            }
            apply_function(name, &values)
        }
        Expr::Binary { left, op, right } => {
            let l = evaluate(catalog, env, left, exists_fn)?;
            // Short-circuit AND / OR on the left operand.
            match op {
                BinaryOp::And if !l.is_null() && !l.is_truthy() => return Ok(Value::Bool(false)),
                BinaryOp::Or if !l.is_null() && l.is_truthy() => return Ok(Value::Bool(true)),
                _ => {}
            }
            let r = evaluate(catalog, env, right, exists_fn)?;
            apply_binary(*op, &l, &r)
        }
    }
}

fn apply_function(name: &str, args: &[Value]) -> Result<Value> {
    match name {
        "ABS" => match args {
            [Value::Int(i)] => Ok(Value::Int(i.abs())),
            [Value::Null] => Ok(Value::Null),
            _ => Err(EngineError::Type(format!(
                "ABS expects one integer, got {args:?}"
            ))),
        },
        "COALESCE" => Ok(args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null)),
        "UPPER" => match args {
            [Value::Str(s)] => Ok(Value::Str(s.to_uppercase())),
            [Value::Null] => Ok(Value::Null),
            _ => Err(EngineError::Type("UPPER expects one string".into())),
        },
        "LOWER" => match args {
            [Value::Str(s)] => Ok(Value::Str(s.to_lowercase())),
            [Value::Null] => Ok(Value::Null),
            _ => Err(EngineError::Type("LOWER expects one string".into())),
        },
        "LENGTH" => match args {
            [Value::Str(s)] => Ok(Value::Int(s.chars().count() as i64)),
            [Value::Null] => Ok(Value::Null),
            _ => Err(EngineError::Type("LENGTH expects one string".into())),
        },
        other => Err(EngineError::UnknownFunction(other.to_string())),
    }
}

fn apply_binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    use BinaryOp::*;
    match op {
        And => Ok(three_valued_and(l, r)),
        Or => Ok(three_valued_or(l, r)),
        Eq | NotEq => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let eq = l == r;
            Ok(Value::Bool(if op == Eq { eq } else { !eq }))
        }
        Lt | LtEq | Gt | GtEq => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let ord = compare(l, r)?;
            let b = match op {
                Lt => ord.is_lt(),
                LtEq => ord.is_le(),
                Gt => ord.is_gt(),
                GtEq => ord.is_ge(),
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Plus | Minus => match (l, r) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(if op == Plus {
                a.wrapping_add(*b)
            } else {
                a.wrapping_sub(*b)
            })),
            _ => Err(EngineError::Type(format!(
                "arithmetic requires integers, got {l} and {r}"
            ))),
        },
    }
}

fn compare(l: &Value, r: &Value) -> Result<std::cmp::Ordering> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(a.cmp(b)),
        (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
        (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
        _ => Err(EngineError::Type(format!(
            "cannot compare {l} with {r} (different types)"
        ))),
    }
}

fn three_valued_and(l: &Value, r: &Value) -> Value {
    let lt = if l.is_null() {
        None
    } else {
        Some(l.is_truthy())
    };
    let rt = if r.is_null() {
        None
    } else {
        Some(r.is_truthy())
    };
    match (lt, rt) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

fn three_valued_or(l: &Value, r: &Value) -> Value {
    let lt = if l.is_null() {
        None
    } else {
        Some(l.is_truthy())
    };
    let rt = if r.is_null() {
        None
    } else {
        Some(r.is_truthy())
    };
    match (lt, rt) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr as E;

    fn no_exists(_: &Catalog, _: &crate::ast::Select, _: &Env<'_>) -> Result<bool> {
        panic!("no subqueries expected in this test")
    }

    fn eval(env: &Env<'_>, expr: &Expr) -> Result<Value> {
        let catalog = Catalog::new();
        evaluate(&catalog, env, expr, &no_exists)
    }

    fn row_env<'a>(tuple: &'a Tuple) -> Env<'a> {
        Env {
            bindings: vec![Binding {
                name: "t".into(),
                columns: vec!["CT".into(), "AC".into(), "N".into()],
                tuple,
            }],
            parent: None,
            group_count: None,
        }
    }

    #[test]
    fn column_resolution_qualified_and_unqualified() {
        let tuple = Tuple::from_iter([Value::str("NYC"), Value::str("212"), Value::int(3)]);
        let env = row_env(&tuple);
        assert_eq!(eval(&env, &E::qcol("t", "CT")).unwrap(), Value::str("NYC"));
        assert_eq!(eval(&env, &E::col("AC")).unwrap(), Value::str("212"));
        assert!(matches!(
            eval(&env, &E::col("missing")),
            Err(EngineError::UnknownColumn(_))
        ));
        assert!(matches!(
            eval(&env, &E::qcol("x", "CT")),
            Err(EngineError::UnknownColumn(_))
        ));
    }

    #[test]
    fn ambiguous_columns_are_rejected_but_qualification_disambiguates() {
        let t1 = Tuple::from_iter([Value::str("NYC")]);
        let t2 = Tuple::from_iter([Value::str("LI")]);
        let env = Env {
            bindings: vec![
                Binding {
                    name: "a".into(),
                    columns: vec!["CT".into()],
                    tuple: &t1,
                },
                Binding {
                    name: "b".into(),
                    columns: vec!["CT".into()],
                    tuple: &t2,
                },
            ],
            parent: None,
            group_count: None,
        };
        let catalog = Catalog::new();
        assert!(matches!(
            evaluate(&catalog, &env, &E::col("CT"), &no_exists),
            Err(EngineError::AmbiguousColumn(_))
        ));
        assert_eq!(
            evaluate(&catalog, &env, &E::qcol("b", "CT"), &no_exists).unwrap(),
            Value::str("LI")
        );
    }

    #[test]
    fn correlated_resolution_falls_back_to_parent() {
        let outer_tuple = Tuple::from_iter([Value::str("Albany")]);
        let outer = Env {
            bindings: vec![Binding {
                name: "o".into(),
                columns: vec!["CT".into()],
                tuple: &outer_tuple,
            }],
            parent: None,
            group_count: None,
        };
        let inner_tuple = Tuple::from_iter([Value::int(1)]);
        let inner = Env {
            bindings: vec![Binding {
                name: "i".into(),
                columns: vec!["CID".into()],
                tuple: &inner_tuple,
            }],
            parent: Some(&outer),
            group_count: None,
        };
        let catalog = Catalog::new();
        assert_eq!(
            evaluate(&catalog, &inner, &E::qcol("o", "CT"), &no_exists).unwrap(),
            Value::str("Albany")
        );
        assert_eq!(
            evaluate(&catalog, &inner, &E::col("CID"), &no_exists).unwrap(),
            Value::int(1)
        );
    }

    #[test]
    fn comparisons_and_three_valued_logic() {
        let tuple = Tuple::from_iter([Value::str("NYC"), Value::Null, Value::int(3)]);
        let env = row_env(&tuple);
        let eq = E::Binary {
            left: Box::new(E::col("CT")),
            op: BinaryOp::Eq,
            right: Box::new(E::lit("NYC")),
        };
        assert_eq!(eval(&env, &eq).unwrap(), Value::Bool(true));

        // NULL = anything → NULL; NULL AND false → false; NULL OR true → true.
        let null_eq = E::Binary {
            left: Box::new(E::col("AC")),
            op: BinaryOp::Eq,
            right: Box::new(E::lit("212")),
        };
        assert_eq!(eval(&env, &null_eq).unwrap(), Value::Null);
        let and_false = E::Binary {
            left: Box::new(null_eq.clone()),
            op: BinaryOp::And,
            right: Box::new(E::lit(false)),
        };
        assert_eq!(eval(&env, &and_false).unwrap(), Value::Bool(false));
        let or_true = E::Binary {
            left: Box::new(null_eq.clone()),
            op: BinaryOp::Or,
            right: Box::new(E::lit(true)),
        };
        assert_eq!(eval(&env, &or_true).unwrap(), Value::Bool(true));
        let and_null = E::Binary {
            left: Box::new(E::lit(true)),
            op: BinaryOp::And,
            right: Box::new(null_eq),
        };
        assert_eq!(eval(&env, &and_null).unwrap(), Value::Null);
    }

    #[test]
    fn numeric_comparisons_arithmetic_and_type_errors() {
        let env = Env::empty();
        let lt = E::Binary {
            left: Box::new(E::lit(2i64)),
            op: BinaryOp::Lt,
            right: Box::new(E::lit(5i64)),
        };
        assert_eq!(eval(&env, &lt).unwrap(), Value::Bool(true));
        let plus = E::Binary {
            left: Box::new(E::lit(2i64)),
            op: BinaryOp::Plus,
            right: Box::new(E::lit(5i64)),
        };
        assert_eq!(eval(&env, &plus).unwrap(), Value::Int(7));
        let bad = E::Binary {
            left: Box::new(E::lit(2i64)),
            op: BinaryOp::Lt,
            right: Box::new(E::lit("x")),
        };
        assert!(matches!(eval(&env, &bad), Err(EngineError::Type(_))));
        // String comparison is lexicographic.
        let cmp = E::Binary {
            left: Box::new(E::lit("a")),
            op: BinaryOp::Lt,
            right: Box::new(E::lit("b")),
        };
        assert_eq!(eval(&env, &cmp).unwrap(), Value::Bool(true));
    }

    #[test]
    fn functions_case_in_list_is_null() {
        let env = Env::empty();
        let abs = E::Function {
            name: "ABS".into(),
            args: vec![E::lit(-3i64)],
        };
        assert_eq!(eval(&env, &abs).unwrap(), Value::Int(3));
        let coalesce = E::Function {
            name: "COALESCE".into(),
            args: vec![E::Literal(Value::Null), E::lit("x")],
        };
        assert_eq!(eval(&env, &coalesce).unwrap(), Value::str("x"));
        assert!(matches!(
            eval(
                &env,
                &E::Function {
                    name: "NOPE".into(),
                    args: vec![]
                }
            ),
            Err(EngineError::UnknownFunction(_))
        ));

        let case = E::Case {
            branches: vec![
                (E::lit(false), E::lit("first")),
                (E::lit(true), E::lit("second")),
            ],
            else_result: Some(Box::new(E::lit("else"))),
        };
        assert_eq!(eval(&env, &case).unwrap(), Value::str("second"));
        let case_else = E::Case {
            branches: vec![(E::lit(false), E::lit("first"))],
            else_result: None,
        };
        assert_eq!(eval(&env, &case_else).unwrap(), Value::Null);

        let in_list = E::InList {
            expr: Box::new(E::lit("NYC")),
            list: vec![E::lit("NYC"), E::lit("LI")],
            negated: false,
        };
        assert_eq!(eval(&env, &in_list).unwrap(), Value::Bool(true));
        let not_in = E::InList {
            expr: Box::new(E::lit("Albany")),
            list: vec![E::lit("NYC")],
            negated: true,
        };
        assert_eq!(eval(&env, &not_in).unwrap(), Value::Bool(true));

        let is_null = E::IsNull {
            expr: Box::new(E::Literal(Value::Null)),
            negated: false,
        };
        assert_eq!(eval(&env, &is_null).unwrap(), Value::Bool(true));
        let is_not_null = E::IsNull {
            expr: Box::new(E::lit(1i64)),
            negated: true,
        };
        assert_eq!(eval(&env, &is_not_null).unwrap(), Value::Bool(true));
    }

    #[test]
    fn count_star_requires_group_context() {
        let env = Env::empty();
        assert!(matches!(
            eval(&env, &E::CountStar),
            Err(EngineError::Semantic(_))
        ));
        let grouped = Env {
            group_count: Some(4),
            ..Env::empty()
        };
        assert_eq!(eval(&grouped, &E::CountStar).unwrap(), Value::Int(4));
    }

    #[test]
    fn not_inverts_truthiness_and_propagates_null() {
        let env = Env::empty();
        assert_eq!(
            eval(&env, &E::Not(Box::new(E::lit(false)))).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&env, &E::Not(Box::new(E::Literal(Value::Null)))).unwrap(),
            Value::Null
        );
    }
}
