//! Recursive-descent parser for the supported SQL subset.

use crate::ast::*;
use crate::error::{EngineError, Result};
use crate::lexer::{tokenize, Token};
use ecfd_relation::Value;

/// Parses a single SQL statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let stmt = parser.statement()?;
    parser.eat_semicolons();
    parser.expect_eof()?;
    Ok(stmt)
}

/// Parses a script of `;`-separated statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    parser.eat_semicolons();
    while !parser.at_eof() {
        out.push(parser.statement()?);
        parser.eat_semicolons();
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> EngineError {
        EngineError::Parse {
            token_index: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn eat_semicolons(&mut self) {
        while matches!(self.peek(), Some(Token::Semicolon)) {
            self.pos += 1;
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing token {:?}", self.peek())))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(t) if t.is_keyword(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    fn eat_token(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, token: Token) -> Result<()> {
        if self.eat_token(&token) {
            Ok(())
        } else {
            Err(self.err(format!("expected {token:?}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected an identifier, found {other:?}"))),
        }
    }

    // ---- statements ---------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.peek_keyword("SELECT") {
            Ok(Statement::Select(self.select()?))
        } else if self.eat_keyword("INSERT") {
            self.insert()
        } else if self.eat_keyword("UPDATE") {
            self.update()
        } else if self.eat_keyword("DELETE") {
            self.delete()
        } else if self.eat_keyword("CREATE") {
            self.create_table()
        } else if self.eat_keyword("DROP") {
            self.expect_keyword("TABLE")?;
            Ok(Statement::DropTable {
                name: self.ident()?,
            })
        } else {
            Err(self.err(format!("expected a statement, found {:?}", self.peek())))
        }
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut items = vec![self.select_item()?];
        while self.eat_token(&Token::Comma) {
            items.push(self.select_item()?);
        }
        let mut from = Vec::new();
        if self.eat_keyword("FROM") {
            from.push(self.table_ref()?);
            while self.eat_token(&Token::Comma) {
                from.push(self.table_ref()?);
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.expr()?);
            while self.eat_token(&Token::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let descending = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderKey { expr, descending });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.bump() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => return Err(self.err(format!("expected a LIMIT count, found {other:?}"))),
            }
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_token(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (Some(Token::Ident(name)), Some(Token::Dot), Some(Token::Star)) = (
            self.tokens.get(self.pos),
            self.tokens.get(self.pos + 1),
            self.tokens.get(self.pos + 2),
        ) {
            let name = name.clone();
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(name));
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else {
            // Implicit alias: a bare identifier after an expression, unless it
            // is a clause keyword.
            match self.peek() {
                Some(Token::Ident(s)) if !is_clause_keyword(s) => {
                    let s = s.clone();
                    self.pos += 1;
                    Some(s)
                }
                _ => None,
            }
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        if self.eat_token(&Token::LParen) {
            let query = self.select()?;
            self.expect_token(Token::RParen)?;
            self.eat_keyword("AS");
            let alias = self.ident()?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        let alias = match self.peek() {
            Some(Token::Ident(s)) if !is_clause_keyword(s) => {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            }
            _ => {
                if self.eat_keyword("AS") {
                    Some(self.ident()?)
                } else {
                    None
                }
            }
        };
        Ok(TableRef::Table { name, alias })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_keyword("INTO")?;
        let table = self.ident()?;
        let columns = if self.peek() == Some(&Token::LParen) && self.values_follow_column_list() {
            self.expect_token(Token::LParen)?;
            let mut cols = vec![self.ident()?];
            while self.eat_token(&Token::Comma) {
                cols.push(self.ident()?);
            }
            self.expect_token(Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        if self.eat_keyword("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect_token(Token::LParen)?;
                let mut row = vec![self.expr()?];
                while self.eat_token(&Token::Comma) {
                    row.push(self.expr()?);
                }
                self.expect_token(Token::RParen)?;
                rows.push(row);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            Ok(Statement::Insert {
                table,
                columns,
                source: InsertSource::Values(rows),
            })
        } else if self.peek_keyword("SELECT") {
            let query = self.select()?;
            Ok(Statement::Insert {
                table,
                columns,
                source: InsertSource::Query(Box::new(query)),
            })
        } else {
            Err(self.err("expected VALUES or SELECT after INSERT INTO"))
        }
    }

    /// Distinguishes `INSERT INTO t (a, b) VALUES ...` from
    /// `INSERT INTO t (SELECT ...)` — the latter is not supported but we want
    /// a clear error, and `INSERT INTO t VALUES ...` must not consume a paren.
    fn values_follow_column_list(&self) -> bool {
        // A column list is `( ident [, ident]* )` followed by VALUES or SELECT.
        let mut i = self.pos + 1;
        loop {
            match self.tokens.get(i) {
                Some(Token::Ident(_)) => i += 1,
                _ => return false,
            }
            match self.tokens.get(i) {
                Some(Token::Comma) => i += 1,
                Some(Token::RParen) => {
                    return matches!(self.tokens.get(i + 1), Some(t) if t.is_keyword("VALUES") || t.is_keyword("SELECT"))
                }
                _ => return false,
            }
        }
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_token(Token::Eq)?;
            let value = self.expr()?;
            assignments.push((col, value));
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_keyword("TABLE")?;
        let name = self.ident()?;
        self.expect_token(Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let type_name = self.ident()?;
            columns.push(ColumnDef {
                name: col,
                type_name: type_name.to_ascii_uppercase(),
            });
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        self.expect_token(Token::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    // ---- expressions ---------------------------------------------------
    //
    // Precedence (loosest to tightest): OR, AND, NOT, comparison / IN / IS,
    // additive, primary.

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            if self.peek_keyword("EXISTS") {
                return self.exists_expr(true);
            }
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        if self.peek_keyword("EXISTS") {
            return self.exists_expr(false);
        }
        self.comparison()
    }

    fn exists_expr(&mut self, negated: bool) -> Result<Expr> {
        self.expect_keyword("EXISTS")?;
        self.expect_token(Token::LParen)?;
        let subquery = self.select()?;
        self.expect_token(Token::RParen)?;
        Ok(Expr::Exists {
            subquery: Box::new(subquery),
            negated,
        })
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::NotEq) => Some(BinaryOp::NotEq),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::LtEq) => Some(BinaryOp::LtEq),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated_in = if self.peek_keyword("NOT")
            && matches!(self.tokens.get(self.pos + 1), Some(t) if t.is_keyword("IN"))
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_keyword("IN") {
            self.expect_token(Token::LParen)?;
            let mut list = vec![self.expr()?];
            while self.eat_token(&Token::Comma) {
                list.push(self.expr()?);
            }
            self.expect_token(Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated: negated_in,
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.primary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Plus,
                Some(Token::Minus) => BinaryOp::Minus,
                _ => break,
            };
            self.pos += 1;
            let right = self.primary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(i)))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                match self.bump() {
                    Some(Token::Int(i)) => Ok(Expr::Literal(Value::Int(-i))),
                    other => Err(self.err(format!("expected a number after `-`, found {other:?}"))),
                }
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Str(s)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_token(Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                // Keyword-led constructs.
                if name.eq_ignore_ascii_case("CASE") {
                    self.pos += 1;
                    return self.case_expr();
                }
                if name.eq_ignore_ascii_case("NULL") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if name.eq_ignore_ascii_case("COUNT")
                    && self.tokens.get(self.pos + 1) == Some(&Token::LParen)
                    && self.tokens.get(self.pos + 2) == Some(&Token::Star)
                    && self.tokens.get(self.pos + 3) == Some(&Token::RParen)
                {
                    self.pos += 4;
                    return Ok(Expr::CountStar);
                }
                // Function call?
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        args.push(self.expr()?);
                        while self.eat_token(&Token::Comma) {
                            args.push(self.expr()?);
                        }
                    }
                    self.expect_token(Token::RParen)?;
                    return Ok(Expr::Function {
                        name: name.to_ascii_uppercase(),
                        args,
                    });
                }
                // Column reference, possibly qualified. Reserved clause
                // keywords cannot start an expression.
                if is_clause_keyword(&name) {
                    return Err(self.err(format!("unexpected keyword `{name}` in expression")));
                }
                self.pos += 1;
                if self.eat_token(&Token::Dot) {
                    let col = self.ident()?;
                    Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    })
                } else {
                    Ok(Expr::Column {
                        qualifier: None,
                        name,
                    })
                }
            }
            other => Err(self.err(format!("expected an expression, found {other:?}"))),
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let mut branches = Vec::new();
        while self.eat_keyword("WHEN") {
            let cond = self.expr()?;
            self.expect_keyword("THEN")?;
            let result = self.expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN branch"));
        }
        let else_result = if self.eat_keyword("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_keyword("END")?;
        Ok(Expr::Case {
            branches,
            else_result,
        })
    }
}

fn is_clause_keyword(s: &str) -> bool {
    [
        "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "AS", "ON", "AND", "OR", "NOT", "IN",
        "IS", "SET", "VALUES", "SELECT", "EXISTS", "WHEN", "THEN", "ELSE", "END", "ASC", "DESC",
        "BY", "DISTINCT", "UNION",
    ]
    .iter()
    .any(|kw| s.eq_ignore_ascii_case(kw))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_select(sql: &str) -> Select {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn parses_simple_select() {
        let s = parse_select("SELECT CT, AC FROM cust WHERE AC = '518'");
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.len(), 1);
        assert!(s.where_clause.is_some());
        assert!(!s.distinct);
    }

    #[test]
    fn parses_aliases_joins_and_distinct() {
        let s = parse_select("SELECT DISTINCT t.CT, c.CID FROM cust t, enc c WHERE t.CT = c.CTL");
        assert!(s.distinct);
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].binding_name(), "t");
        assert_eq!(s.from[1].binding_name(), "c");
        match &s.items[0] {
            SelectItem::Expr { expr, .. } => assert_eq!(expr, &Expr::qcol("t", "CT")),
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn parses_group_by_having_count() {
        let s = parse_select(
            "SELECT m.CID, m.CTL, COUNT(*) FROM macro m GROUP BY m.CID, m.CTL HAVING COUNT(*) > 1",
        );
        assert_eq!(s.group_by.len(), 2);
        let having = s.having.unwrap();
        assert!(having.contains_aggregate());
        assert!(
            matches!(s.items[2], SelectItem::Expr { ref expr, .. } if *expr == Expr::CountStar)
        );
    }

    #[test]
    fn parses_exists_and_not_exists_subqueries() {
        let s = parse_select(
            "SELECT t.CT FROM cust t, enc c WHERE (c.CTL <> 1 OR (EXISTS (SELECT T.A FROM TA T WHERE T.CID = c.CID AND t.CT = T.A) AND c.CTL = 1)) AND NOT EXISTS (SELECT T.A FROM TB T WHERE T.CID = c.CID)",
        );
        let w = s.where_clause.unwrap();
        // Just make sure both polarities appear somewhere in the tree.
        fn count_exists(e: &Expr, negated: bool) -> usize {
            match e {
                Expr::Exists { negated: n, .. } => usize::from(*n == negated),
                Expr::Binary { left, right, .. } => {
                    count_exists(left, negated) + count_exists(right, negated)
                }
                Expr::Not(inner) => count_exists(inner, negated),
                _ => 0,
            }
        }
        assert_eq!(count_exists(&w, false), 1);
        assert_eq!(count_exists(&w, true), 1);
    }

    #[test]
    fn parses_case_when_and_functions() {
        let s = parse_select(
            "SELECT CASE WHEN c.CTL > 0 THEN t.CT ELSE '@' END AS CTL, ABS(c.ACR) FROM cust t, enc c",
        );
        match &s.items[0] {
            SelectItem::Expr { expr, alias } => {
                assert_eq!(alias.as_deref(), Some("CTL"));
                assert!(matches!(expr, Expr::Case { .. }));
            }
            other => panic!("unexpected item {other:?}"),
        }
        match &s.items[1] {
            SelectItem::Expr { expr, .. } => {
                assert_eq!(
                    expr,
                    &Expr::Function {
                        name: "ABS".into(),
                        args: vec![Expr::qcol("c", "ACR")]
                    }
                );
            }
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn parses_in_list_is_null_order_limit() {
        let s = parse_select(
            "SELECT * FROM cust WHERE CT IN ('NYC', 'LI') AND AC IS NOT NULL AND ZIP NOT IN ('0') ORDER BY CT DESC, AC LIMIT 10",
        );
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].descending);
        assert!(!s.order_by[1].descending);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn parses_wildcards_and_derived_tables() {
        let s = parse_select("SELECT t.*, * FROM (SELECT CT FROM cust) t");
        assert!(matches!(s.items[0], SelectItem::QualifiedWildcard(ref q) if q == "t"));
        assert!(matches!(s.items[1], SelectItem::Wildcard));
        assert!(matches!(s.from[0], TableRef::Subquery { .. }));
    }

    #[test]
    fn parses_insert_update_delete_create_drop() {
        let stmt =
            parse_statement("INSERT INTO cust (CT, AC) VALUES ('NYC', '212'), ('LI', '516')")
                .unwrap();
        match stmt {
            Statement::Insert {
                table,
                columns,
                source: InsertSource::Values(rows),
            } => {
                assert_eq!(table, "cust");
                assert_eq!(columns.unwrap(), vec!["CT", "AC"]);
                assert_eq!(rows.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }

        let stmt =
            parse_statement("INSERT INTO vio SELECT CT, AC FROM cust WHERE AC = '999'").unwrap();
        assert!(matches!(
            stmt,
            Statement::Insert {
                source: InsertSource::Query(_),
                ..
            }
        ));

        let stmt = parse_statement("UPDATE cust SET SV = 1, MV = 0 WHERE CT = 'NYC'").unwrap();
        match stmt {
            Statement::Update {
                assignments,
                where_clause,
                ..
            } => {
                assert_eq!(assignments.len(), 2);
                assert!(where_clause.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }

        let stmt = parse_statement("DELETE FROM cust WHERE CT = 'NYC'").unwrap();
        assert!(matches!(stmt, Statement::Delete { .. }));

        let stmt = parse_statement("CREATE TABLE enc (CID INT, CTL INT, ACR INT)").unwrap();
        match stmt {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "enc");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[0].type_name, "INT");
            }
            other => panic!("unexpected {other:?}"),
        }

        assert!(matches!(
            parse_statement("DROP TABLE enc").unwrap(),
            Statement::DropTable { .. }
        ));
    }

    #[test]
    fn parses_scripts_and_reports_errors() {
        let script = parse_script("SELECT 1; SELECT 2;").unwrap();
        assert_eq!(script.len(), 2);

        assert!(matches!(
            parse_statement("SELECT FROM"),
            Err(EngineError::Parse { .. })
        ));
        assert!(matches!(
            parse_statement("SELECT 1 extra junk ("),
            Err(EngineError::Parse { .. })
        ));
        assert!(matches!(
            parse_statement("FLY ME TO THE MOON"),
            Err(EngineError::Parse { .. })
        ));
        assert!(matches!(
            parse_statement("SELECT CASE END"),
            Err(EngineError::Parse { .. })
        ));
    }

    #[test]
    fn negative_numbers_and_precedence() {
        let s = parse_select("SELECT A FROM t WHERE A = -2 OR B = 1 AND C = 2");
        // AND binds tighter than OR.
        match s.where_clause.unwrap() {
            Expr::Binary {
                op: BinaryOp::Or,
                right,
                ..
            } => {
                assert!(matches!(
                    *right,
                    Expr::Binary {
                        op: BinaryOp::And,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
