//! Abstract syntax tree for the supported SQL subset.

use ecfd_relation::Value;

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference, optionally qualified by a table alias (`t.AC`).
    Column {
        /// Table alias / name qualifier, if written.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// A literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation `NOT e`.
    Not(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)` / `expr NOT IN (...)` with literal list.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// The candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `EXISTS (subquery)` / `NOT EXISTS (subquery)`.
    Exists {
        /// The subquery (may be correlated with the outer query).
        subquery: Box<Select>,
        /// True for `NOT EXISTS`.
        negated: bool,
    },
    /// Searched `CASE WHEN cond THEN value [WHEN ..]* [ELSE value] END`.
    Case {
        /// `(condition, result)` pairs, tried in order.
        branches: Vec<(Expr, Expr)>,
        /// The `ELSE` result (NULL when omitted).
        else_result: Option<Box<Expr>>,
    },
    /// Function call (`ABS(x)`, `COALESCE(a, b)`, ...).
    Function {
        /// Function name, upper-cased.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `COUNT(*)` — the only aggregate the detection queries need.
    CountStar,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Plus,
    /// `-`
    Minus,
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — every column of every FROM item, in order.
    Wildcard,
    /// `alias.*` — every column of one FROM item.
    QualifiedWildcard(String),
    /// An expression with an optional output alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Output column name (`AS alias`).
        alias: Option<String>,
    },
}

/// A table reference in the FROM clause: a base table or a parenthesised
/// subquery, with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named base table.
    Table {
        /// Table name in the catalog.
        name: String,
        /// Alias (defaults to the table name).
        alias: Option<String>,
    },
    /// A derived table `(SELECT ...) alias`.
    Subquery {
        /// The subquery.
        query: Box<Select>,
        /// Mandatory alias.
        alias: String,
    },
}

impl TableRef {
    /// The name this FROM item is referred to by (alias if given).
    pub fn binding_name(&self) -> &str {
        match self {
            TableRef::Table { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Subquery { alias, .. } => alias,
        }
    }
}

/// An `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Expression to sort by.
    pub expr: Expr,
    /// True for descending order.
    pub descending: bool,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM items (comma-joined: cross product).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Type name (`INT`, `STR`/`TEXT`/`VARCHAR`, `BOOL`).
    pub type_name: String,
}

/// A SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A query.
    Select(Select),
    /// `INSERT INTO table [(cols)] VALUES (..), (..)` or `INSERT INTO table [(cols)] SELECT ..`.
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list, if written.
        columns: Option<Vec<String>>,
        /// The rows to insert.
        source: InsertSource,
    },
    /// `UPDATE table SET col = expr, .. [WHERE ..]`.
    Update {
        /// Target table.
        table: String,
        /// `(column, value expression)` assignments.
        assignments: Vec<(String, Expr)>,
        /// Row filter.
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM table [WHERE ..]`.
    Delete {
        /// Target table.
        table: String,
        /// Row filter.
        where_clause: Option<Expr>,
    },
    /// `CREATE TABLE name (col TYPE, ..)`.
    CreateTable {
        /// New table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table to drop.
        name: String,
    },
}

/// Source of rows for an INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// Literal `VALUES` rows.
    Values(Vec<Vec<Expr>>),
    /// Rows produced by a query.
    Query(Box<Select>),
}

impl Expr {
    /// Convenience constructor for an unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Convenience constructor for a qualified column reference.
    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    /// Convenience constructor for a literal.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// True when the expression contains an aggregate (`COUNT(*)`).
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::CountStar => true,
            Expr::Column { .. } | Expr::Literal(_) => false,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Not(e) => e.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Exists { .. } => false,
            Expr::Case {
                branches,
                else_result,
            } => {
                branches
                    .iter()
                    .any(|(c, r)| c.contains_aggregate() || r.contains_aggregate())
                    || else_result
                        .as_ref()
                        .map(|e| e.contains_aggregate())
                        .unwrap_or(false)
            }
            Expr::Function { args, .. } => args.iter().any(Expr::contains_aggregate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_expected_nodes() {
        assert_eq!(
            Expr::col("CT"),
            Expr::Column {
                qualifier: None,
                name: "CT".into()
            }
        );
        assert_eq!(
            Expr::qcol("t", "CT"),
            Expr::Column {
                qualifier: Some("t".into()),
                name: "CT".into()
            }
        );
        assert_eq!(Expr::lit(5i64), Expr::Literal(Value::Int(5)));
    }

    #[test]
    fn aggregate_detection_recurses() {
        let agg = Expr::Binary {
            left: Box::new(Expr::CountStar),
            op: BinaryOp::Gt,
            right: Box::new(Expr::lit(1i64)),
        };
        assert!(agg.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        let case = Expr::Case {
            branches: vec![(Expr::col("c"), Expr::CountStar)],
            else_result: None,
        };
        assert!(case.contains_aggregate());
    }

    #[test]
    fn table_ref_binding_names() {
        let t = TableRef::Table {
            name: "cust".into(),
            alias: Some("t".into()),
        };
        assert_eq!(t.binding_name(), "t");
        let t = TableRef::Table {
            name: "cust".into(),
            alias: None,
        };
        assert_eq!(t.binding_name(), "cust");
    }
}
