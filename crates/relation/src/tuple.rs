//! Tuples: ordered lists of values conforming to a schema.

use crate::schema::{AttrId, Schema};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A data tuple.
///
/// A tuple does not carry its schema; the owning [`crate::Relation`] validates
/// arity and types on insertion. Projections by [`AttrId`] are cheap and are
/// the main operation the eCFD matching semantics needs (`t[X]`, `t[Y, Yp]`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from a value list.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// All values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access to all values.
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    /// The value at attribute position `id`, if in range.
    pub fn get(&self, id: AttrId) -> Option<&Value> {
        self.values.get(id.index())
    }

    /// The value at attribute position `id`; panics when out of range.
    ///
    /// Detection code resolves attribute ids against the relation schema before
    /// iterating tuples, so an out-of-range access is a programming error.
    pub fn value(&self, id: AttrId) -> &Value {
        &self.values[id.index()]
    }

    /// Replaces the value at `id`, returning the previous value.
    pub fn set(&mut self, id: AttrId, value: Value) -> Option<Value> {
        let slot = self.values.get_mut(id.index())?;
        Some(std::mem::replace(slot, value))
    }

    /// Projects the tuple onto the given attribute positions (the paper's
    /// `t[Z]` notation).
    pub fn project(&self, attrs: &[AttrId]) -> Tuple {
        Tuple {
            values: attrs
                .iter()
                .map(|a| self.values[a.index()].clone())
                .collect(),
        }
    }

    /// Projects by attribute name using a schema.
    pub fn project_named(&self, schema: &Schema, names: &[&str]) -> Option<Tuple> {
        let mut vals = Vec::with_capacity(names.len());
        for n in names {
            let id = schema.attr_id(n)?;
            vals.push(self.values.get(id.index())?.clone());
        }
        Some(Tuple { values: vals })
    }

    /// Concatenates two tuples (used by the join operator of the SQL engine).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Returns a new tuple with `extra` values appended.
    pub fn extended(&self, extra: impl IntoIterator<Item = Value>) -> Tuple {
        let mut values = self.values.clone();
        values.extend(extra);
        Tuple { values }
    }

    /// Consumes the tuple and returns its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Creates a tuple from anything convertible into values, so that
/// `Tuple::from_iter(["Albany", "518"])` and `iter.collect::<Tuple>()` both
/// work.
impl<V: Into<Value>> FromIterator<V> for Tuple {
    fn from_iter<I: IntoIterator<Item = V>>(values: I) -> Self {
        Tuple {
            values: values.into_iter().map(Into::into).collect(),
        }
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl std::ops::Index<AttrId> for Tuple {
    type Output = Value;
    fn index(&self, index: AttrId) -> &Value {
        &self.values[index.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn t1() -> Tuple {
        // Tuple t1 of Fig. 1 in the paper.
        Tuple::from_iter(["718", "1111111", "Mike", "Tree Ave.", "Albany", "12238"])
    }

    fn cust_schema() -> Schema {
        Schema::builder("cust")
            .attr("AC", DataType::Str)
            .attr("PN", DataType::Str)
            .attr("NM", DataType::Str)
            .attr("STR", DataType::Str)
            .attr("CT", DataType::Str)
            .attr("ZIP", DataType::Str)
            .build()
    }

    #[test]
    fn accessors() {
        let t = t1();
        assert_eq!(t.arity(), 6);
        assert_eq!(t.get(AttrId(0)), Some(&Value::str("718")));
        assert_eq!(t.get(AttrId(6)), None);
        assert_eq!(t[AttrId(4)], Value::str("Albany"));
    }

    #[test]
    fn set_replaces_value() {
        let mut t = t1();
        let old = t.set(AttrId(0), Value::str("518"));
        assert_eq!(old, Some(Value::str("718")));
        assert_eq!(t[AttrId(0)], Value::str("518"));
        assert_eq!(t.set(AttrId(42), Value::Null), None);
    }

    #[test]
    fn projection_by_id_and_name() {
        let t = t1();
        let s = cust_schema();
        let p = t.project(&[AttrId(4), AttrId(0)]);
        assert_eq!(p, Tuple::from_iter(["Albany", "718"]));
        let p = t.project_named(&s, &["CT", "AC"]).unwrap();
        assert_eq!(p, Tuple::from_iter(["Albany", "718"]));
        assert!(t.project_named(&s, &["NOPE"]).is_none());
    }

    #[test]
    fn concat_and_extend() {
        let a = Tuple::from_iter([1i64, 2]);
        let b = Tuple::from_iter(["x"]);
        assert_eq!(
            a.concat(&b).values(),
            &[Value::int(1), Value::int(2), Value::str("x")]
        );
        assert_eq!(
            a.extended([Value::bool(true)]).values(),
            &[Value::int(1), Value::int(2), Value::bool(true)]
        );
    }

    #[test]
    fn display_formats_all_values() {
        let t = Tuple::from_iter([Value::int(1), Value::Null, Value::str("a")]);
        assert_eq!(t.to_string(), "(1, NULL, a)");
    }
}
