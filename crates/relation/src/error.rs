//! Error type shared by the storage substrate.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RelationError>;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A tuple had a different arity than the relation's schema.
    ArityMismatch {
        /// Arity the schema expects.
        expected: usize,
        /// Arity the offending tuple actually had.
        actual: usize,
    },
    /// A value's type did not match the declared attribute type.
    TypeMismatch {
        /// The attribute whose declared type was violated.
        attribute: String,
        /// Declared type name.
        expected: String,
        /// Value that violated it (display form).
        actual: String,
    },
    /// An attribute name was not found in a schema.
    UnknownAttribute {
        /// The attribute that was requested.
        name: String,
        /// The relation/schema it was requested from.
        relation: String,
    },
    /// A relation name was not found in the catalog.
    UnknownRelation(String),
    /// A relation with the given name already exists in the catalog.
    DuplicateRelation(String),
    /// A row id was not present in the relation.
    UnknownRow(u64),
    /// A row id was supplied twice to a row-preserving constructor.
    DuplicateRow(u64),
    /// A CSV line could not be parsed.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Human readable reason.
        message: String,
    },
    /// Schema construction error (e.g. duplicate attribute name).
    Schema(String),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::ArityMismatch { expected, actual } => {
                write!(f, "tuple arity {actual} does not match schema arity {expected}")
            }
            RelationError::TypeMismatch {
                attribute,
                expected,
                actual,
            } => write!(
                f,
                "value `{actual}` does not have the declared type {expected} of attribute {attribute}"
            ),
            RelationError::UnknownAttribute { name, relation } => {
                write!(f, "attribute `{name}` does not exist in relation `{relation}`")
            }
            RelationError::UnknownRelation(name) => {
                write!(f, "relation `{name}` does not exist in the catalog")
            }
            RelationError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` already exists in the catalog")
            }
            RelationError::UnknownRow(id) => write!(f, "row id {id} does not exist"),
            RelationError::DuplicateRow(id) => write!(f, "row id {id} supplied twice"),
            RelationError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            RelationError::Schema(msg) => write!(f, "schema error: {msg}"),
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelationError::ArityMismatch {
            expected: 6,
            actual: 5,
        };
        assert!(e.to_string().contains("arity 5"));
        assert!(e.to_string().contains("arity 6"));

        let e = RelationError::UnknownAttribute {
            name: "AC".into(),
            relation: "cust".into(),
        };
        assert!(e.to_string().contains("AC"));
        assert!(e.to_string().contains("cust"));

        let e = RelationError::Csv {
            line: 3,
            message: "too few fields".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: E) {}
        assert_err(RelationError::UnknownRelation("x".into()));
    }
}
