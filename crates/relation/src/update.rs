//! Update batches: the paper's `ΔD⁺` (insertions) and `ΔD⁻` (deletions).
//!
//! `INCDETECT` (Section V-B) receives a set of updates `ΔD` and incrementally
//! maintains the violation set. A [`Delta`] carries both the tuples to insert
//! and the tuples to delete; the two sets are kept disjoint as in the paper's
//! experiments ("we always ensure that ΔD⁺ and ΔD⁻ do not overlap").

use crate::error::Result;
use crate::relation::{Relation, RowId};
use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};

/// A batch of updates against a single relation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delta {
    /// Tuples to insert (`ΔD⁺`).
    pub insertions: Vec<Tuple>,
    /// Tuples to delete (`ΔD⁻`), identified by value.
    pub deletions: Vec<Tuple>,
}

/// Statistics returned by applying a [`Delta`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Number of rows inserted.
    pub inserted: usize,
    /// Number of rows deleted (all duplicates of each deletion tuple count).
    pub deleted: usize,
    /// Number of deletion tuples that matched no row.
    pub missed_deletions: usize,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Self {
        Delta::default()
    }

    /// A delta consisting only of insertions.
    pub fn insert_only(insertions: Vec<Tuple>) -> Self {
        Delta {
            insertions,
            deletions: Vec::new(),
        }
    }

    /// A delta consisting only of deletions.
    pub fn delete_only(deletions: Vec<Tuple>) -> Self {
        Delta {
            insertions: Vec::new(),
            deletions,
        }
    }

    /// A delta replacing one tuple by another — a value modification expressed
    /// in the paper's pure insert/delete update model (`ΔD⁻` carries the old
    /// tuple, `ΔD⁺` the new one).
    pub fn replacement(old: Tuple, new: Tuple) -> Self {
        Delta {
            insertions: vec![new],
            deletions: vec![old],
        }
    }

    /// Adds a replacement (delete `old`, insert `new`) to this batch.
    pub fn push_replacement(&mut self, old: Tuple, new: Tuple) {
        self.deletions.push(old);
        self.insertions.push(new);
    }

    /// Absorbs another delta into this one (deletions and insertions are
    /// concatenated; processing order within each kind is preserved).
    pub fn merge(&mut self, other: Delta) {
        self.deletions.extend(other.deletions);
        self.insertions.extend(other.insertions);
    }

    /// Combines a sequence of deltas into a single batch.
    pub fn merged(deltas: impl IntoIterator<Item = Delta>) -> Delta {
        let mut out = Delta::new();
        for delta in deltas {
            out.merge(delta);
        }
        out
    }

    /// Number of insertion plus deletion tuples.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// Whether the delta carries no updates at all.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }

    /// Whether the insertion and deletion sets share a tuple (the experiments
    /// in the paper always keep them disjoint).
    pub fn overlaps(&self) -> bool {
        self.deletions.iter().any(|d| self.insertions.contains(d))
    }

    /// Applies the delta to a relation: deletions first, then insertions, as in
    /// `INCDETECT`'s processing order. Returns statistics plus the row ids of
    /// the newly inserted rows (so callers can track them, e.g. to set their
    /// violation flags).
    pub fn apply(&self, relation: &mut Relation) -> Result<(UpdateStats, Vec<RowId>)> {
        let mut stats = UpdateStats::default();
        for d in &self.deletions {
            let removed = relation.delete_matching(d);
            if removed.is_empty() {
                stats.missed_deletions += 1;
            }
            stats.deleted += removed.len();
        }
        let mut new_ids = Vec::with_capacity(self.insertions.len());
        for ins in &self.insertions {
            new_ids.push(relation.insert(ins.clone())?);
            stats.inserted += 1;
        }
        Ok((stats, new_ids))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};

    fn rel() -> Relation {
        let schema = Schema::builder("t")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build();
        Relation::with_tuples(
            schema,
            [
                Tuple::from_iter(["Albany", "518"]),
                Tuple::from_iter(["NYC", "212"]),
                Tuple::from_iter(["NYC", "212"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn apply_deletes_then_inserts() {
        let mut r = rel();
        let delta = Delta {
            insertions: vec![Tuple::from_iter(["Troy", "518"])],
            deletions: vec![
                Tuple::from_iter(["NYC", "212"]),
                Tuple::from_iter(["Missing", "000"]),
            ],
        };
        let (stats, new_ids) = delta.apply(&mut r).unwrap();
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.deleted, 2, "both duplicate NYC rows removed");
        assert_eq!(stats.missed_deletions, 1);
        assert_eq!(new_ids.len(), 1);
        assert_eq!(r.len(), 2);
        assert!(r.contains_row(new_ids[0]));
    }

    #[test]
    fn replacement_deletes_then_inserts() {
        let mut r = rel();
        let delta = Delta::replacement(
            Tuple::from_iter(["Albany", "518"]),
            Tuple::from_iter(["Albany", "519"]),
        );
        let (stats, _) = delta.apply(&mut r).unwrap();
        assert_eq!(stats.deleted, 1);
        assert_eq!(stats.inserted, 1);
        assert_eq!(r.len(), 3);
        assert!(r
            .tuples()
            .any(|t| t == &Tuple::from_iter(["Albany", "519"])));
        assert!(!r
            .tuples()
            .any(|t| t == &Tuple::from_iter(["Albany", "518"])));
    }

    #[test]
    fn merge_concatenates_batches() {
        let mut a = Delta::delete_only(vec![Tuple::from_iter(["NYC", "212"])]);
        a.push_replacement(
            Tuple::from_iter(["Albany", "518"]),
            Tuple::from_iter(["Albany", "519"]),
        );
        let b = Delta::insert_only(vec![Tuple::from_iter(["Troy", "518"])]);
        let merged = Delta::merged([a, b]);
        assert_eq!(merged.deletions.len(), 2);
        assert_eq!(merged.insertions.len(), 2);
        let mut r = rel();
        let (stats, _) = merged.apply(&mut r).unwrap();
        assert_eq!(stats.deleted, 3, "both NYC duplicates plus the Albany row");
        assert_eq!(stats.inserted, 2);
    }

    #[test]
    fn constructors_and_overlap() {
        let ins = Delta::insert_only(vec![Tuple::from_iter(["a", "b"])]);
        assert_eq!(ins.len(), 1);
        assert!(!ins.is_empty());
        assert!(!ins.overlaps());

        let del = Delta::delete_only(vec![Tuple::from_iter(["a", "b"])]);
        assert_eq!(del.len(), 1);

        let both = Delta {
            insertions: vec![Tuple::from_iter(["a", "b"])],
            deletions: vec![Tuple::from_iter(["a", "b"])],
        };
        assert!(both.overlaps());
        assert!(Delta::new().is_empty());
    }
}
