//! The catalog: a named collection of relations, standing in for a database.
//!
//! The detection algorithms of the paper operate against an RDBMS holding the
//! data relation (`cust`), the constraint-encoding relations (`enc`, `T_AL`,
//! `T_AR`) and the auxiliary relation `Aux(D)`. The [`Catalog`] holds all of
//! them; [`SharedCatalog`] wraps it for shared ownership across the SQL engine
//! and the detection drivers.

use crate::error::{RelationError, Result};
use crate::relation::Relation;
use crate::schema::Schema;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A named collection of relations.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Relation>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a relation under its schema name. Fails if the name is taken.
    pub fn create(&mut self, relation: Relation) -> Result<()> {
        let name = relation.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(RelationError::DuplicateRelation(name));
        }
        self.tables.insert(name, relation);
        Ok(())
    }

    /// Registers a relation, replacing any existing relation of the same name.
    pub fn create_or_replace(&mut self, relation: Relation) {
        self.tables.insert(relation.name().to_string(), relation);
    }

    /// Creates an empty relation with the given schema.
    pub fn create_empty(&mut self, schema: Schema) -> Result<()> {
        self.create(Relation::new(schema))
    }

    /// Removes a relation, returning it.
    pub fn drop_table(&mut self, name: &str) -> Result<Relation> {
        self.tables
            .remove(name)
            .ok_or_else(|| RelationError::UnknownRelation(name.to_string()))
    }

    /// Whether a relation with the given name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Immutable access to a relation.
    pub fn get(&self, name: &str) -> Result<&Relation> {
        self.tables
            .get(name)
            .ok_or_else(|| RelationError::UnknownRelation(name.to_string()))
    }

    /// Mutable access to a relation.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| RelationError::UnknownRelation(name.to_string()))
    }

    /// Names of all registered relations, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no relations are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of rows across all relations (useful for reporting).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Relation::len).sum()
    }
}

/// A catalog behind an `Arc<RwLock<..>>` for shared ownership between the SQL
/// engine session and detection drivers.
#[derive(Debug, Clone, Default)]
pub struct SharedCatalog {
    inner: Arc<RwLock<Catalog>>,
}

impl SharedCatalog {
    /// Wraps an existing catalog.
    pub fn new(catalog: Catalog) -> Self {
        SharedCatalog {
            inner: Arc::new(RwLock::new(catalog)),
        }
    }

    /// Runs a closure with shared (read) access to the catalog.
    pub fn read<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        f(&self.inner.read())
    }

    /// Runs a closure with exclusive (write) access to the catalog.
    pub fn write<R>(&self, f: impl FnOnce(&mut Catalog) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Clones the current catalog contents (snapshot).
    pub fn snapshot(&self) -> Catalog {
        self.inner.read().clone()
    }
}

impl From<Catalog> for SharedCatalog {
    fn from(c: Catalog) -> Self {
        SharedCatalog::new(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use crate::tuple::Tuple;

    fn cust() -> Relation {
        let schema = Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build();
        Relation::with_tuples(schema, [Tuple::from_iter(["Albany", "518"])]).unwrap()
    }

    #[test]
    fn create_get_drop() {
        let mut cat = Catalog::new();
        cat.create(cust()).unwrap();
        assert!(cat.contains("cust"));
        assert_eq!(cat.get("cust").unwrap().len(), 1);
        assert!(matches!(
            cat.create(cust()),
            Err(RelationError::DuplicateRelation(_))
        ));
        assert_eq!(cat.table_names(), vec!["cust"]);
        assert_eq!(cat.total_rows(), 1);

        let dropped = cat.drop_table("cust").unwrap();
        assert_eq!(dropped.len(), 1);
        assert!(cat.is_empty());
        assert!(cat.get("cust").is_err());
        assert!(cat.drop_table("cust").is_err());
    }

    #[test]
    fn create_or_replace_overwrites() {
        let mut cat = Catalog::new();
        cat.create(cust()).unwrap();
        let schema = Schema::builder("cust").attr("X", DataType::Int).build();
        cat.create_or_replace(Relation::new(schema));
        assert_eq!(cat.get("cust").unwrap().len(), 0);
        assert_eq!(cat.get("cust").unwrap().schema().arity(), 1);
    }

    #[test]
    fn get_mut_allows_inserts() {
        let mut cat = Catalog::new();
        cat.create(cust()).unwrap();
        cat.get_mut("cust")
            .unwrap()
            .insert(Tuple::from_iter(["Troy", "518"]))
            .unwrap();
        assert_eq!(cat.get("cust").unwrap().len(), 2);
    }

    #[test]
    fn shared_catalog_read_write_snapshot() {
        let shared = SharedCatalog::new(Catalog::new());
        shared.write(|c| c.create(cust())).unwrap();
        let n = shared.read(|c| c.get("cust").unwrap().len());
        assert_eq!(n, 1);
        let snap = shared.snapshot();
        assert!(snap.contains("cust"));
        // Mutating after the snapshot does not affect it.
        shared.write(|c| {
            c.get_mut("cust")
                .unwrap()
                .insert(Tuple::from_iter(["Troy", "518"]))
                .unwrap()
        });
        assert_eq!(snap.get("cust").unwrap().len(), 1);
        assert_eq!(shared.read(|c| c.get("cust").unwrap().len()), 2);
    }
}
