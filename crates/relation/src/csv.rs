//! Minimal CSV import/export for relations.
//!
//! The experiment harness and examples serialise generated `cust` instances
//! and detection reports to CSV. Only the subset of CSV we need is supported:
//! comma separation, optional double-quote quoting with `""` escaping, and a
//! header row matching the schema attribute names.

use crate::error::{RelationError, Result};
use crate::relation::Relation;
use crate::schema::{DataType, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// Serialises one field, quoting when it contains a comma, quote or newline.
fn write_field(out: &mut String, field: &str) {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Splits one CSV line into fields, honouring double-quote quoting.
fn parse_line(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        cur.push('"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                }
                other => cur.push(other),
            }
        } else {
            match c {
                '"' => {
                    if cur.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(RelationError::Csv {
                            line: line_no,
                            message: "unexpected quote inside unquoted field".into(),
                        });
                    }
                }
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                other => cur.push(other),
            }
        }
    }
    if in_quotes {
        return Err(RelationError::Csv {
            line: line_no,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(cur);
    Ok(fields)
}

/// Renders a relation as CSV text with a header row.
pub fn to_csv(relation: &Relation) -> String {
    let mut out = String::new();
    let names = relation.schema().attr_names();
    for (i, n) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_field(&mut out, n);
    }
    out.push('\n');
    for tuple in relation.tuples() {
        for (i, v) in tuple.values().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_field(&mut out, &v.to_string());
        }
        out.push('\n');
    }
    out
}

/// Parses CSV text into a relation named `name`, inferring an all-string
/// schema from the header row. This is the loader of the `serve` binary's
/// `--csv` flag: eCFD pattern constants are strings in the paper's
/// experiments, so string columns are the lossless default — use
/// [`from_csv`] with an explicit [`Schema`] when typed columns matter.
pub fn from_csv_infer(name: &str, text: &str) -> Result<Relation> {
    let header = text.lines().next().ok_or(RelationError::Csv {
        line: 1,
        message: "missing header row".into(),
    })?;
    let mut builder = Schema::builder(name);
    for field in parse_line(header, 1)? {
        builder = builder.attr(field, DataType::Str);
    }
    from_csv(builder.try_build()?, text)
}

/// Parses CSV text into a relation conforming to `schema`.
///
/// The header row must list exactly the schema's attribute names in order.
/// Field values are coerced according to the declared attribute types;
/// the literal `NULL` always maps to [`Value::Null`].
pub fn from_csv(schema: Schema, text: &str) -> Result<Relation> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(RelationError::Csv {
        line: 1,
        message: "missing header row".into(),
    })?;
    let header_fields = parse_line(header, 1)?;
    let expected: Vec<String> = schema.attr_names().iter().map(|s| s.to_string()).collect();
    if header_fields != expected {
        return Err(RelationError::Csv {
            line: 1,
            message: format!(
                "header {:?} does not match schema attributes {:?}",
                header_fields, expected
            ),
        });
    }

    let mut relation = Relation::new(schema);
    for (idx, line) in lines {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_line(line, line_no)?;
        if fields.len() != relation.schema().arity() {
            return Err(RelationError::Csv {
                line: line_no,
                message: format!(
                    "expected {} fields, found {}",
                    relation.schema().arity(),
                    fields.len()
                ),
            });
        }
        let mut values = Vec::with_capacity(fields.len());
        for (field, attr) in fields.iter().zip(relation.schema().attributes()) {
            let value = if field.eq_ignore_ascii_case("null") {
                Value::Null
            } else {
                match attr.data_type() {
                    DataType::Int => {
                        field
                            .parse::<i64>()
                            .map(Value::Int)
                            .map_err(|_| RelationError::Csv {
                                line: line_no,
                                message: format!("`{field}` is not an integer for {}", attr.name),
                            })?
                    }
                    DataType::Bool => match field.to_ascii_lowercase().as_str() {
                        "true" | "1" => Value::Bool(true),
                        "false" | "0" => Value::Bool(false),
                        _ => {
                            return Err(RelationError::Csv {
                                line: line_no,
                                message: format!("`{field}` is not a boolean for {}", attr.name),
                            })
                        }
                    },
                    DataType::Str => Value::Str(field.clone()),
                }
            };
            values.push(value);
        }
        relation.insert(Tuple::new(values))?;
    }
    Ok(relation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .attr("N", DataType::Int)
            .attr("OK", DataType::Bool)
            .build()
    }

    #[test]
    fn round_trip() {
        let rel = Relation::with_tuples(
            schema(),
            [
                Tuple::new(vec![
                    Value::str("Albany"),
                    Value::str("518"),
                    Value::int(3),
                    Value::bool(true),
                ]),
                Tuple::new(vec![
                    Value::str("New York, NY"),
                    Value::Null,
                    Value::int(-1),
                    Value::bool(false),
                ]),
            ],
        )
        .unwrap();
        let text = to_csv(&rel);
        let parsed = from_csv(schema(), &text).unwrap();
        assert_eq!(parsed, rel);
    }

    #[test]
    fn quoting_of_commas_and_quotes() {
        let mut out = String::new();
        write_field(&mut out, r#"He said "hi", twice"#);
        assert_eq!(out, r#""He said ""hi"", twice""#);
        let fields = parse_line(&out, 1).unwrap();
        assert_eq!(fields, vec![r#"He said "hi", twice"#]);
    }

    #[test]
    fn header_mismatch_is_rejected() {
        let text = "X,Y,Z,W\n";
        let err = from_csv(schema(), text).unwrap_err();
        assert!(matches!(err, RelationError::Csv { line: 1, .. }));
    }

    #[test]
    fn bad_field_counts_and_types_are_rejected() {
        let text = "CT,AC,N,OK\nAlbany,518,3\n";
        assert!(from_csv(schema(), text).is_err());
        let text = "CT,AC,N,OK\nAlbany,518,notanint,true\n";
        assert!(from_csv(schema(), text).is_err());
        let text = "CT,AC,N,OK\nAlbany,518,3,maybe\n";
        assert!(from_csv(schema(), text).is_err());
    }

    #[test]
    fn empty_lines_are_skipped_and_null_parses() {
        let text = "CT,AC,N,OK\n\nAlbany,NULL,3,true\n\n";
        let rel = from_csv(schema(), text).unwrap();
        assert_eq!(rel.len(), 1);
        assert!(rel.tuples().next().unwrap().values()[1].is_null());
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(from_csv(schema(), "").is_err());
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(parse_line("\"abc", 3).is_err());
        assert!(parse_line("ab\"c", 3).is_err());
    }

    /// Dictionary codes are a function of the value stream, so a relation
    /// reloaded from CSV re-encodes to exactly the codes of the original —
    /// including unicode payloads, the empty string, and the `'@'` blank
    /// marker the SQL encoding uses.
    #[test]
    fn dictionary_codes_are_stable_across_csv_reload() {
        use crate::columnar::{ColumnarView, Dictionary};
        use crate::schema::AttrId;

        let schema = Schema::builder("t")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .attr("N", DataType::Int)
            .build();
        let rel = Relation::with_tuples(
            schema.clone(),
            [
                Tuple::new(vec![Value::str("Zürich"), Value::str("@"), Value::int(1)]),
                Tuple::new(vec![Value::str(""), Value::str("518"), Value::int(-7)]),
                Tuple::new(vec![Value::str("東京"), Value::str(""), Value::Null]),
                Tuple::new(vec![
                    Value::str("a,b\"c"),
                    Value::str("@"),
                    Value::int(i64::MAX),
                ]),
                Tuple::new(vec![Value::str("Zürich"), Value::str("518"), Value::int(1)]),
            ],
        )
        .unwrap();

        let reloaded = from_csv(schema, &to_csv(&rel)).unwrap();
        // NULL round-trips through the literal; everything else verbatim.
        assert_eq!(reloaded.len(), rel.len());

        let mut dict_a = Dictionary::new();
        let mut dict_b = Dictionary::new();
        let view_a = ColumnarView::build(&rel, &mut dict_a);
        let view_b = ColumnarView::build(&reloaded, &mut dict_b);
        assert_eq!(view_a.num_rows(), view_b.num_rows());
        for col in 0..view_a.num_columns() {
            assert_eq!(
                view_a.column(AttrId(col)),
                view_b.column(AttrId(col)),
                "codes diverge in column {col} after CSV reload"
            );
        }
        // And re-encoding the original into its own dictionary issues the
        // same codes again (interning is idempotent).
        let view_c = ColumnarView::build(&rel, &mut dict_a);
        for col in 0..view_a.num_columns() {
            assert_eq!(view_a.column(AttrId(col)), view_c.column(AttrId(col)));
        }
    }
}
