//! Secondary hash indexes over relations.
//!
//! The incremental detection algorithm repeatedly asks "which tuples of `D`
//! match this key on attributes `X`?" (e.g. when joining the auxiliary
//! relation `Aux(D)` with the update set). A [`HashIndex`] answers those
//! lookups without scanning the base relation.

use crate::relation::{Relation, RowId};
use crate::schema::AttrId;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// A hash index mapping the projection of a tuple on a fixed list of
/// attributes to the row ids holding that projection.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    attrs: Vec<AttrId>,
    buckets: HashMap<Vec<Value>, Vec<RowId>>,
}

impl HashIndex {
    /// Builds an index on `attrs` over the current contents of `relation`.
    pub fn build(relation: &Relation, attrs: Vec<AttrId>) -> Self {
        let mut index = HashIndex {
            attrs,
            buckets: HashMap::new(),
        };
        for (id, tuple) in relation.iter() {
            index.insert(id, tuple);
        }
        index
    }

    /// The attributes this index is keyed on.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.buckets.len()
    }

    fn key_of(&self, tuple: &Tuple) -> Vec<Value> {
        self.attrs.iter().map(|a| tuple.value(*a).clone()).collect()
    }

    /// Registers a tuple under its key.
    pub fn insert(&mut self, id: RowId, tuple: &Tuple) {
        let key = self.key_of(tuple);
        self.buckets.entry(key).or_default().push(id);
    }

    /// Removes a tuple's registration. Returns true if the row was present.
    pub fn remove(&mut self, id: RowId, tuple: &Tuple) -> bool {
        let key = self.key_of(tuple);
        if let Some(bucket) = self.buckets.get_mut(&key) {
            if let Some(pos) = bucket.iter().position(|r| *r == id) {
                bucket.swap_remove(pos);
                if bucket.is_empty() {
                    self.buckets.remove(&key);
                }
                return true;
            }
        }
        false
    }

    /// Row ids whose projection on the index attributes equals `key`.
    pub fn lookup(&self, key: &[Value]) -> &[RowId] {
        self.buckets.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Row ids matching the projection of `tuple` on the index attributes.
    pub fn lookup_tuple(&self, tuple: &Tuple) -> &[RowId] {
        let key = self.key_of(tuple);
        self.buckets.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over `(key, row-ids)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<RowId>)> + '_ {
        self.buckets.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};

    fn sample() -> Relation {
        let schema = Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build();
        Relation::with_tuples(
            schema,
            [
                Tuple::from_iter(["Albany", "518"]),
                Tuple::from_iter(["NYC", "212"]),
                Tuple::from_iter(["NYC", "718"]),
                Tuple::from_iter(["Troy", "518"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let rel = sample();
        let idx = HashIndex::build(&rel, vec![AttrId(0)]);
        assert_eq!(idx.distinct_keys(), 3);
        assert_eq!(idx.lookup(&[Value::str("NYC")]).len(), 2);
        assert_eq!(idx.lookup(&[Value::str("Albany")]).len(), 1);
        assert!(idx.lookup(&[Value::str("LI")]).is_empty());
    }

    #[test]
    fn composite_key() {
        let rel = sample();
        let idx = HashIndex::build(&rel, vec![AttrId(0), AttrId(1)]);
        assert_eq!(idx.lookup(&[Value::str("NYC"), Value::str("212")]).len(), 1);
        assert_eq!(idx.lookup_tuple(&Tuple::from_iter(["NYC", "718"])).len(), 1);
    }

    #[test]
    fn insert_and_remove_maintain_buckets() {
        let rel = sample();
        let mut idx = HashIndex::build(&rel, vec![AttrId(0)]);
        let new_tuple = Tuple::from_iter(["NYC", "646"]);
        idx.insert(RowId(100), &new_tuple);
        assert_eq!(idx.lookup(&[Value::str("NYC")]).len(), 3);

        assert!(idx.remove(RowId(100), &new_tuple));
        assert_eq!(idx.lookup(&[Value::str("NYC")]).len(), 2);
        // Removing something that is not indexed reports false.
        assert!(!idx.remove(RowId(100), &new_tuple));

        // Removing the only Albany row empties and drops its bucket.
        let albany = Tuple::from_iter(["Albany", "518"]);
        let albany_id = rel
            .iter()
            .find(|(_, t)| *t == &albany)
            .map(|(id, _)| id)
            .unwrap();
        assert!(idx.remove(albany_id, &albany));
        assert_eq!(idx.distinct_keys(), 2);
    }
}
