//! Relations (tables) with stable row identifiers.
//!
//! Stable [`RowId`]s matter for the incremental detection algorithm
//! (`INCDETECT`, Section V-B of the paper): the violation flags SV / MV are
//! updated in place for individual rows, and deletions `ΔD⁻` must remove
//! specific rows without disturbing the identity of the remaining ones.

use crate::error::{RelationError, Result};
use crate::schema::{AttrId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Stable identifier of a row within a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowId(pub u64);

impl RowId {
    /// Returns the numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An in-memory relation instance: a schema plus a bag of tuples with stable
/// row identifiers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Relation {
    schema: Schema,
    next_row_id: u64,
    /// Row storage in insertion order (after deletions, order of survivors is
    /// preserved).
    rows: Vec<(RowId, Tuple)>,
    /// Index from row id to position in `rows`.
    #[serde(skip)]
    positions: HashMap<RowId, usize>,
    /// Row ids pre-assigned to upcoming insertions (front = next insert).
    /// A sharded serving layer schedules globally allocated ids here so a
    /// partitioned relation hands out the same ids a single-owner relation
    /// would; when empty, `insert` falls back to `next_row_id`.
    #[serde(skip)]
    scheduled_ids: VecDeque<RowId>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            next_row_id: 0,
            rows: Vec::new(),
            positions: HashMap::new(),
            scheduled_ids: VecDeque::new(),
        }
    }

    /// Creates a relation and bulk-inserts the given tuples.
    pub fn with_tuples(schema: Schema, tuples: impl IntoIterator<Item = Tuple>) -> Result<Self> {
        let mut rel = Relation::new(schema);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// Creates a relation from `(RowId, Tuple)` pairs, *preserving* the given
    /// row ids instead of assigning fresh ones. Used to materialise a
    /// relation from a frozen snapshot (see `columnar::FrozenView`) so that
    /// row-id-keyed reports and evidence stay meaningful against the copy.
    /// Subsequent [`Relation::insert`] calls assign ids above the largest id
    /// supplied here. Fails on duplicate row ids and on tuples that do not
    /// fit the schema.
    pub fn with_rows(
        schema: Schema,
        rows: impl IntoIterator<Item = (RowId, Tuple)>,
    ) -> Result<Self> {
        let mut rel = Relation::new(schema);
        for (id, tuple) in rows {
            rel.validate(&tuple)?;
            if rel.positions.contains_key(&id) {
                return Err(RelationError::DuplicateRow(id.0));
            }
            rel.next_row_id = rel.next_row_id.max(id.0 + 1);
            rel.positions.insert(id, rel.rows.len());
            rel.rows.push((id, tuple));
        }
        Ok(rel)
    }

    /// The schema of the relation.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Name of the relation (from the schema).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the relation contains no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn validate(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        for (attr, value) in self.schema.attributes().iter().zip(tuple.values()) {
            if !attr.data_type().admits(value) {
                return Err(RelationError::TypeMismatch {
                    attribute: attr.name.clone(),
                    expected: attr.data_type().name().to_string(),
                    actual: value.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Inserts a tuple, returning the assigned row id: the next scheduled id
    /// when one is queued (see [`Relation::schedule_row_ids`]), otherwise the
    /// next sequential id.
    pub fn insert(&mut self, tuple: Tuple) -> Result<RowId> {
        self.validate(&tuple)?;
        let id = match self.scheduled_ids.pop_front() {
            Some(id) => {
                if self.positions.contains_key(&id) {
                    return Err(RelationError::DuplicateRow(id.0));
                }
                self.next_row_id = self.next_row_id.max(id.0 + 1);
                id
            }
            None => {
                let id = RowId(self.next_row_id);
                self.next_row_id += 1;
                id
            }
        };
        self.positions.insert(id, self.rows.len());
        self.rows.push((id, tuple));
        Ok(id)
    }

    /// Queues row ids for upcoming insertions, in order: the next `insert`
    /// calls consume them front-to-back instead of assigning sequential ids.
    /// This is how a sharded serving layer makes a partitioned relation hand
    /// out the same (globally allocated, possibly non-contiguous) ids a
    /// single-owner relation would. Scheduled ids are transient: they are not
    /// serialised and should be cleared once the batch they were meant for
    /// has been applied.
    pub fn schedule_row_ids(&mut self, ids: impl IntoIterator<Item = RowId>) {
        self.scheduled_ids.extend(ids);
    }

    /// Drops any scheduled-but-unconsumed row ids.
    pub fn clear_scheduled_row_ids(&mut self) {
        self.scheduled_ids.clear();
    }

    /// The id the next unscheduled insertion would be assigned.
    pub fn next_row_id(&self) -> u64 {
        self.next_row_id
    }

    /// Inserts many tuples, returning their row ids.
    pub fn insert_all(&mut self, tuples: impl IntoIterator<Item = Tuple>) -> Result<Vec<RowId>> {
        tuples.into_iter().map(|t| self.insert(t)).collect()
    }

    /// Deletes a row by id, returning the removed tuple.
    pub fn delete(&mut self, id: RowId) -> Result<Tuple> {
        let pos = self
            .positions
            .remove(&id)
            .ok_or(RelationError::UnknownRow(id.0))?;
        let (_, tuple) = self.rows.remove(pos);
        // Re-index all rows after the removed position.
        for (i, (rid, _)) in self.rows.iter().enumerate().skip(pos) {
            self.positions.insert(*rid, i);
        }
        Ok(tuple)
    }

    /// Deletes every row whose tuple equals `tuple` (bag semantics: all
    /// duplicates go). Returns the ids of the deleted rows.
    pub fn delete_matching(&mut self, tuple: &Tuple) -> Vec<RowId> {
        let ids: Vec<RowId> = self
            .rows
            .iter()
            .filter(|(_, t)| t == tuple)
            .map(|(id, _)| *id)
            .collect();
        for id in &ids {
            let _ = self.delete(*id);
        }
        ids
    }

    /// Returns the tuple stored under `id`.
    pub fn get(&self, id: RowId) -> Option<&Tuple> {
        self.positions.get(&id).map(|&pos| &self.rows[pos].1)
    }

    /// Returns true if the relation still contains the row `id`.
    pub fn contains_row(&self, id: RowId) -> bool {
        self.positions.contains_key(&id)
    }

    /// Replaces the tuple stored under `id`.
    pub fn replace(&mut self, id: RowId, tuple: Tuple) -> Result<Tuple> {
        self.validate(&tuple)?;
        let pos = *self
            .positions
            .get(&id)
            .ok_or(RelationError::UnknownRow(id.0))?;
        Ok(std::mem::replace(&mut self.rows[pos].1, tuple))
    }

    /// Updates a single attribute of a row in place.
    pub fn update_value(&mut self, id: RowId, attr: AttrId, value: Value) -> Result<Value> {
        let pos = *self
            .positions
            .get(&id)
            .ok_or(RelationError::UnknownRow(id.0))?;
        let attr_meta =
            self.schema
                .attribute(attr)
                .ok_or_else(|| RelationError::UnknownAttribute {
                    name: attr.to_string(),
                    relation: self.schema.name().to_string(),
                })?;
        if !attr_meta.data_type().admits(&value) {
            return Err(RelationError::TypeMismatch {
                attribute: attr_meta.name.clone(),
                expected: attr_meta.data_type().name().to_string(),
                actual: value.to_string(),
            });
        }
        Ok(self.rows[pos]
            .1
            .set(attr, value)
            .expect("validated position"))
    }

    /// Iterates over `(RowId, &Tuple)` pairs in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Tuple)> + '_ {
        self.rows.iter().map(|(id, t)| (*id, t))
    }

    /// Iterates over tuples only.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.rows.iter().map(|(_, t)| t)
    }

    /// All row ids in storage order.
    pub fn row_ids(&self) -> Vec<RowId> {
        self.rows.iter().map(|(id, _)| *id).collect()
    }

    /// Collects all tuples into a vector (cloning).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.rows.iter().map(|(_, t)| t.clone()).collect()
    }

    /// Resolves a list of attribute names to ids against this relation's schema.
    pub fn attr_ids(&self, names: &[&str]) -> Result<Vec<AttrId>> {
        names.iter().map(|n| self.schema.require_attr(n)).collect()
    }

    /// Creates a new relation with the same tuples but a schema extended by
    /// the given attributes, filling the new columns with `fill`. Row ids and
    /// the next-id counter are preserved (ids may be non-contiguous, e.g. in
    /// a shard of a partitioned table), as are any scheduled row ids.
    pub fn extend_schema(
        &self,
        extra: Vec<crate::schema::Attribute>,
        fill: Value,
    ) -> Result<Relation> {
        let n_extra = extra.len();
        let schema = self.schema.extend(extra)?;
        let mut rel = Relation::with_rows(
            schema,
            self.rows
                .iter()
                .map(|(id, t)| (*id, t.extended(std::iter::repeat_n(fill.clone(), n_extra)))),
        )?;
        rel.next_row_id = rel.next_row_id.max(self.next_row_id);
        rel.scheduled_ids = self.scheduled_ids.clone();
        Ok(rel)
    }

    /// Renders the relation as an ASCII table (for examples and debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let names = self.schema.attr_names();
        out.push_str(&names.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        out.push('\n');
        for (_, t) in &self.rows {
            let row: Vec<String> = t.values().iter().map(|v| v.to_string()).collect();
            out.push_str(&row.join(" | "));
            out.push('\n');
        }
        out
    }

    /// Rebuilds the row-id position index; required after deserialisation.
    pub fn rebuild_positions(&mut self) {
        self.positions = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, (id, _))| (*id, i))
            .collect();
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}
impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn schema() -> Schema {
        Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build()
    }

    fn rel_with(rows: &[(&str, &str)]) -> Relation {
        Relation::with_tuples(
            schema(),
            rows.iter().map(|(ct, ac)| Tuple::from_iter([*ct, *ac])),
        )
        .unwrap()
    }

    #[test]
    fn insert_assigns_monotonic_ids() {
        let mut r = Relation::new(schema());
        let a = r.insert(Tuple::from_iter(["Albany", "518"])).unwrap();
        let b = r.insert(Tuple::from_iter(["Troy", "518"])).unwrap();
        assert!(b > a);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(a).unwrap(), &Tuple::from_iter(["Albany", "518"]));
    }

    #[test]
    fn insert_validates_arity_and_types() {
        let mut r = Relation::new(schema());
        assert!(matches!(
            r.insert(Tuple::from_iter(["justone"])),
            Err(RelationError::ArityMismatch { .. })
        ));
        assert!(matches!(
            r.insert(Tuple::new(vec![Value::int(1), Value::str("518")])),
            Err(RelationError::TypeMismatch { .. })
        ));
        // NULLs are admitted by every type.
        assert!(r
            .insert(Tuple::new(vec![Value::Null, Value::str("518")]))
            .is_ok());
    }

    #[test]
    fn delete_preserves_remaining_order_and_ids() {
        let mut r = rel_with(&[("Albany", "518"), ("Troy", "518"), ("NYC", "212")]);
        let ids = r.row_ids();
        r.delete(ids[1]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(ids[0]).unwrap()[AttrId(0)], Value::str("Albany"));
        assert_eq!(r.get(ids[2]).unwrap()[AttrId(0)], Value::str("NYC"));
        assert!(!r.contains_row(ids[1]));
        // Deleting again fails.
        assert!(r.delete(ids[1]).is_err());
        // Remaining iteration order is stable.
        let cities: Vec<_> = r.tuples().map(|t| t[AttrId(0)].clone()).collect();
        assert_eq!(cities, vec![Value::str("Albany"), Value::str("NYC")]);
    }

    #[test]
    fn delete_matching_removes_duplicates() {
        let mut r = rel_with(&[("NYC", "212"), ("NYC", "212"), ("NYC", "718")]);
        let removed = r.delete_matching(&Tuple::from_iter(["NYC", "212"]));
        assert_eq!(removed.len(), 2);
        assert_eq!(r.len(), 1);
        assert!(r
            .delete_matching(&Tuple::from_iter(["Nowhere", "000"]))
            .is_empty());
    }

    #[test]
    fn update_value_respects_types() {
        let mut r = rel_with(&[("Albany", "718")]);
        let id = r.row_ids()[0];
        let old = r.update_value(id, AttrId(1), Value::str("518")).unwrap();
        assert_eq!(old, Value::str("718"));
        assert_eq!(r.get(id).unwrap()[AttrId(1)], Value::str("518"));
        assert!(r.update_value(id, AttrId(1), Value::int(5)).is_err());
        assert!(r
            .update_value(RowId(999), AttrId(1), Value::str("x"))
            .is_err());
    }

    #[test]
    fn replace_swaps_whole_tuple() {
        let mut r = rel_with(&[("Albany", "718")]);
        let id = r.row_ids()[0];
        let old = r.replace(id, Tuple::from_iter(["Albany", "518"])).unwrap();
        assert_eq!(old, Tuple::from_iter(["Albany", "718"]));
        assert!(r.replace(RowId(77), Tuple::from_iter(["x", "y"])).is_err());
    }

    #[test]
    fn extend_schema_adds_flag_columns() {
        let r = rel_with(&[("Albany", "518"), ("NYC", "212")]);
        let extended = r
            .extend_schema(
                vec![
                    crate::schema::Attribute::new("SV", DataType::Bool),
                    crate::schema::Attribute::new("MV", DataType::Bool),
                ],
                Value::bool(false),
            )
            .unwrap();
        assert_eq!(extended.schema().arity(), 4);
        for t in extended.tuples() {
            assert_eq!(t[AttrId(2)], Value::bool(false));
            assert_eq!(t[AttrId(3)], Value::bool(false));
        }
    }

    #[test]
    fn scheduled_ids_override_sequential_assignment() {
        let mut r = rel_with(&[("Albany", "518")]);
        r.schedule_row_ids([RowId(7), RowId(3)]);
        assert_eq!(
            r.insert(Tuple::from_iter(["Troy", "518"])).unwrap(),
            RowId(7)
        );
        assert_eq!(
            r.insert(Tuple::from_iter(["NYC", "212"])).unwrap(),
            RowId(3)
        );
        // Queue drained: back to sequential, above the largest handed out.
        assert_eq!(r.insert(Tuple::from_iter(["LI", "516"])).unwrap(), RowId(8));
        // Scheduling an occupied id is an error when consumed.
        r.schedule_row_ids([RowId(3)]);
        assert!(r.insert(Tuple::from_iter(["Rye", "914"])).is_err());
        r.clear_scheduled_row_ids();
        assert!(r.insert(Tuple::from_iter(["Rye", "914"])).is_ok());
    }

    #[test]
    fn extend_schema_preserves_row_ids_and_counter() {
        let mut r = rel_with(&[("Albany", "518"), ("Troy", "518"), ("NYC", "212")]);
        let ids = r.row_ids();
        r.delete(ids[0]).unwrap();
        let extended = r
            .extend_schema(
                vec![crate::schema::Attribute::new("SV", DataType::Bool)],
                Value::bool(false),
            )
            .unwrap();
        assert_eq!(extended.row_ids(), vec![ids[1], ids[2]]);
        // The counter survives the extension: fresh inserts do not reuse the
        // deleted row's id.
        let mut extended = extended;
        let new = extended
            .insert(Tuple::new(vec![
                Value::str("LI"),
                Value::str("516"),
                Value::bool(false),
            ]))
            .unwrap();
        assert_eq!(new, RowId(3));
    }

    #[test]
    fn render_contains_header_and_rows() {
        let r = rel_with(&[("Albany", "518")]);
        let s = r.render();
        assert!(s.contains("CT | AC"));
        assert!(s.contains("Albany | 518"));
    }

    #[test]
    fn rebuild_positions_restores_lookup() {
        let mut r = rel_with(&[("Albany", "518"), ("Troy", "518")]);
        let ids = r.row_ids();
        r.positions.clear();
        r.rebuild_positions();
        assert!(r.get(ids[1]).is_some());
    }
}
