//! # ecfd-relation
//!
//! In-memory relational storage substrate for the eCFD reproduction.
//!
//! The paper ("Increasing the Expressivity of Conditional Functional Dependencies
//! without Extra Complexity", ICDE 2008) evaluates its detection algorithms on a
//! `cust` relation stored in a commercial RDBMS. This crate provides the storage
//! layer that substitutes for that RDBMS: typed values and domains, schemas,
//! tuples, relations with stable row identifiers, secondary hash indexes, a named
//! catalog, CSV import/export and update batches (the paper's `ΔD⁺` / `ΔD⁻`).
//!
//! The crate is deliberately free of any eCFD-specific logic so that it can be
//! reused by the SQL engine (`ecfd-engine`), the constraint library
//! (`ecfd-core`) and the detection algorithms (`ecfd-detect`).
//!
//! ## The columnar execution core
//!
//! Alongside the row-oriented storage, [`columnar`] provides the
//! dictionary-encoded representation the detection hot path runs on: a
//! [`Dictionary`] interning strings to dense symbols, a fixed-width [`Code`]
//! word packing `Null` / `Int` / `Bool` / interned-string values (see the
//! [`columnar`] module docs for the exact Value ↔ Code mapping, dictionary
//! lifetime rules, and when a view is invalidated), a [`CodeVec`]
//! small-vector projection key, and a [`ColumnarView`] of per-attribute code
//! columns derivable from any [`Relation`] and maintainable under [`Delta`]
//! application. Code equality decides value equality within one dictionary,
//! so group-by and pattern matching become single-word integer comparisons.
//!
//! ## Example
//!
//! ```
//! use ecfd_relation::{Schema, DataType, Relation, Tuple, Value};
//!
//! let schema = Schema::builder("cust")
//!     .attr("CT", DataType::Str)
//!     .attr("AC", DataType::Str)
//!     .build();
//! let mut cust = Relation::new(schema);
//! cust.insert(Tuple::new(vec![Value::str("Albany"), Value::str("518")])).unwrap();
//! cust.insert(Tuple::new(vec![Value::str("NYC"), Value::str("212")])).unwrap();
//! assert_eq!(cust.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod catalog;
pub mod columnar;
pub mod csv;
pub mod error;
pub mod index;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod update;
pub mod value;

pub use catalog::{Catalog, SharedCatalog};
pub use columnar::{
    shard_of, shard_of_value, Code, CodeMap, CodeVec, ColumnarView, Dictionary, FrozenView,
    FxBuildHasher, FxHasher,
};
pub use error::{RelationError, Result};
pub use index::HashIndex;
pub use relation::{Relation, RowId};
pub use schema::{AttrId, Attribute, DataType, Domain, Schema, SchemaBuilder};
pub use tuple::Tuple;
pub use update::{Delta, UpdateStats};
pub use value::Value;
