//! Typed scalar values stored in relations.
//!
//! The eCFD paper only needs string- and integer-valued attributes (city names,
//! area codes, zip codes, counts produced by `GROUP BY ... HAVING COUNT(*)`),
//! plus SQL `NULL` for attributes blanked out by the `CASE` construct of the
//! multi-tuple-violation query. [`Value`] covers exactly that.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A scalar value held by a tuple attribute.
///
/// Values are totally ordered so that they can be used as keys in sorted
/// containers and in `GROUP BY` evaluation; the order places `Null` first,
/// then integers, then booleans, then strings. Comparisons across types are
/// well-defined but never considered "equal" unless both type and payload
/// match.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL / absent value.
    Null,
    /// 64-bit signed integer (used for counts and the eCFD encoding codes).
    Int(i64),
    /// Boolean (used for the SV / MV violation flags).
    Bool(bool),
    /// UTF-8 string (used for cities, area codes, names, the '@' blank marker).
    Str(String),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for integer values.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Convenience constructor for boolean values.
    pub fn bool(b: bool) -> Self {
        Value::Bool(b)
    }

    /// Returns `true` when the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the contained integer, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the contained string slice, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the contained boolean, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Truthiness used by the SQL engine when a value appears in a boolean
    /// context: NULL and `false` and `0` are false, everything else is true.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// A stable rank used to order values of different types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Bool(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// SQL-style three-valued equality: comparing with NULL yields `None`.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            None
        } else {
            Some(self == other)
        }
    }

    /// Parses a value from its textual form, used by the CSV loader.
    ///
    /// Integers parse to [`Value::Int`]; the literal `NULL` (case-insensitive)
    /// parses to [`Value::Null`]; `true`/`false` parse to booleans; everything
    /// else is a string.
    pub fn parse_literal(text: &str) -> Value {
        if text.eq_ignore_ascii_case("null") {
            return Value::Null;
        }
        if text.eq_ignore_ascii_case("true") {
            return Value::Bool(true);
        }
        if text.eq_ignore_ascii_case("false") {
            return Value::Bool(false);
        }
        if let Ok(i) = text.parse::<i64>() {
            return Value::Int(i);
        }
        Value::Str(text.to_string())
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Value::str("NYC").as_str(), Some("NYC"));
        assert_eq!(Value::int(518).as_int(), Some(518));
        assert_eq!(Value::bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::str("x").as_int(), None);
        assert_eq!(Value::int(1).as_str(), None);
    }

    #[test]
    fn display_round_trips_through_parse_literal() {
        for v in [
            Value::Null,
            Value::int(-42),
            Value::bool(true),
            Value::str("Albany"),
        ] {
            let text = v.to_string();
            assert_eq!(Value::parse_literal(&text), v);
        }
    }

    #[test]
    fn parse_literal_classifies_types() {
        assert_eq!(Value::parse_literal("123"), Value::Int(123));
        assert_eq!(Value::parse_literal("-7"), Value::Int(-7));
        assert_eq!(Value::parse_literal("NULL"), Value::Null);
        assert_eq!(Value::parse_literal("null"), Value::Null);
        assert_eq!(Value::parse_literal("TRUE"), Value::Bool(true));
        assert_eq!(Value::parse_literal("Troy"), Value::str("Troy"));
        // Leading-zero strings like zip codes "085" still parse as integers;
        // callers that need to preserve them should quote via schema types.
        assert_eq!(Value::parse_literal("085"), Value::Int(85));
    }

    #[test]
    fn ordering_is_total_and_groups_types() {
        let mut vals = vec![
            Value::str("b"),
            Value::int(2),
            Value::Null,
            Value::str("a"),
            Value::int(1),
            Value::bool(false),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::int(1),
                Value::int(2),
                Value::bool(false),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn sql_eq_is_three_valued() {
        assert_eq!(Value::int(1).sql_eq(&Value::int(1)), Some(true));
        assert_eq!(Value::int(1).sql_eq(&Value::int(2)), Some(false));
        assert_eq!(Value::Null.sql_eq(&Value::int(1)), None);
        assert_eq!(Value::int(1).sql_eq(&Value::Null), None);
        // Cross-type comparison is false, not NULL.
        assert_eq!(Value::int(1).sql_eq(&Value::str("1")), Some(false));
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::bool(false).is_truthy());
        assert!(!Value::int(0).is_truthy());
        assert!(!Value::str("").is_truthy());
        assert!(Value::bool(true).is_truthy());
        assert!(Value::int(5).is_truthy());
        assert!(Value::str("x").is_truthy());
    }

    #[test]
    fn conversions_from_primitives() {
        let v: Value = 5i64.into();
        assert_eq!(v, Value::Int(5));
        let v: Value = "hi".into();
        assert_eq!(v, Value::str("hi"));
        let v: Value = String::from("hi").into();
        assert_eq!(v, Value::str("hi"));
        let v: Value = true.into();
        assert_eq!(v, Value::Bool(true));
    }
}
