//! Dictionary-encoded, columnar execution core.
//!
//! The detection hot path groups tuples on attribute projections and counts
//! distinct projections per group. Doing that over row-oriented [`Tuple`]s
//! means hashing and cloning [`Value::Str`] payloads once per tuple *per
//! constraint* — the dominant cost on scaled workloads. This module provides
//! the compact representation every layer above shares instead:
//!
//! * [`Dictionary`] interns strings (and out-of-range integers) to dense
//!   `u32` symbols;
//! * [`Code`] packs any [`Value`] into one fixed-width 64-bit word;
//! * [`CodeVec`] is a small-vector projection key (inline up to four codes)
//!   used as the group key of the detection group machinery;
//! * [`ColumnarView`] holds per-attribute code columns derived from a
//!   [`Relation`] and can be kept incrementally up to date under
//!   [`Delta`](crate::Delta)-style row insertion and removal.
//!
//! ## Value ↔ Code mapping
//!
//! A [`Code`] is a 64-bit word with a 3-bit tag in the low bits:
//!
//! | tag | value kind | payload (high 61 bits) |
//! |-----|------------|------------------------|
//! | `0` | [`Value::Null`] | unused (always zero) |
//! | `1` | [`Value::Bool`] | `0` / `1` |
//! | `2` | [`Value::Int`] in `[-2^60, 2^60)` | the integer, two's complement, sign-extended on decode |
//! | `3` | [`Value::Int`] outside that range | index into the dictionary's big-int table |
//! | `4` | [`Value::Str`] | index into the dictionary's string table |
//!
//! Encoding is *canonical* with respect to one dictionary: equal values
//! always map to equal codes and distinct values to distinct codes, so code
//! equality (a single `u64` compare) decides value equality. Code *order* is
//! **not** value order — symbols are numbered in interning order — so
//! anything that must be ordered deterministically across processes decodes
//! back to [`Value`]s first.
//!
//! ## Dictionary lifetime and ownership
//!
//! A dictionary only ever grows: interning never invalidates previously
//! issued codes, and re-encoding the same value always returns the same
//! code. Codes are meaningful only relative to the dictionary that issued
//! them — two dictionaries fed the same values in the same order issue the
//! same codes (interning is deterministic), but codes must never be compared
//! across dictionaries. The detectors therefore keep one dictionary per
//! compiled constraint set (shared by the constraint patterns, every
//! detection pass, and the incremental maintenance state), interning pattern
//! constants once at registration time and data values as views are built.
//!
//! ## When a `ColumnarView` is invalidated
//!
//! A view is a snapshot of a relation's codes plus a row-id index. It stays
//! valid as long as every mutation of the underlying relation is mirrored
//! through [`ColumnarView::insert`] / [`ColumnarView::remove`] (which is how
//! the incremental detector keeps its view current under `Delta`
//! application). Mutating the relation behind the view's back — replacing
//! tuples, updating values in place, or dropping/recreating the table —
//! invalidates it; rebuild with [`ColumnarView::build`]. Appending extra
//! columns to the *schema* does not invalidate a prefix view built with
//! [`ColumnarView::build_prefix`].

use crate::relation::{Relation, RowId};
use crate::schema::AttrId;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

const TAG_BITS: u32 = 3;
const TAG_MASK: u64 = (1 << TAG_BITS) - 1;
const TAG_NULL: u64 = 0;
const TAG_BOOL: u64 = 1;
const TAG_INT: u64 = 2;
const TAG_BIG_INT: u64 = 3;
const TAG_SYM: u64 = 4;

/// Smallest / largest integer that fits the inline 61-bit payload.
const INLINE_INT_MIN: i64 = -(1 << 60);
const INLINE_INT_MAX: i64 = (1 << 60) - 1;

/// A [`Value`] packed into one fixed-width 64-bit word. See the module docs
/// for the tag layout and the canonical-encoding invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Code(u64);

impl Code {
    /// The code of [`Value::Null`].
    pub const NULL: Code = Code(TAG_NULL);

    /// The raw packed word.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Whether this code encodes [`Value::Null`].
    pub fn is_null(self) -> bool {
        self.0 == TAG_NULL
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:x}", self.0)
    }
}

/// Interns strings and out-of-range integers to dense symbols, issuing
/// canonical [`Code`]s for every [`Value`]. Grows monotonically; never
/// invalidates issued codes.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    /// Symbol → string table; shares each allocation with the `by_string`
    /// key (the dictionary is grow-only, so the footprint is one `Arc<str>`
    /// per distinct string, not two `String`s).
    strings: Vec<std::sync::Arc<str>>,
    by_string: HashMap<std::sync::Arc<str>, u32>,
    big_ints: Vec<i64>,
    by_big_int: HashMap<i64, u32>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Number of interned strings.
    pub fn num_strings(&self) -> usize {
        self.strings.len()
    }

    /// Interns a string, returning its symbol.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&sym) = self.by_string.get(s) {
            return sym;
        }
        let sym = u32::try_from(self.strings.len()).expect("dictionary overflow (> 2^32 strings)");
        let shared: std::sync::Arc<str> = s.into();
        self.strings.push(shared.clone());
        self.by_string.insert(shared, sym);
        sym
    }

    /// Encodes a value, interning strings (and out-of-range integers) as
    /// needed. Always succeeds; equal values get equal codes.
    pub fn encode(&mut self, value: &Value) -> Code {
        match value {
            Value::Null => Code::NULL,
            Value::Bool(b) => Code(TAG_BOOL | (u64::from(*b) << TAG_BITS)),
            Value::Int(i) if (INLINE_INT_MIN..=INLINE_INT_MAX).contains(i) => {
                Code(TAG_INT | ((*i as u64) << TAG_BITS))
            }
            Value::Int(i) => {
                let idx = match self.by_big_int.get(i) {
                    Some(&idx) => idx,
                    None => {
                        let idx = u32::try_from(self.big_ints.len()).expect("dictionary overflow");
                        self.big_ints.push(*i);
                        self.by_big_int.insert(*i, idx);
                        idx
                    }
                };
                Code(TAG_BIG_INT | (u64::from(idx) << TAG_BITS))
            }
            Value::Str(s) => Code(TAG_SYM | (u64::from(self.intern(s)) << TAG_BITS)),
        }
    }

    /// Encodes a value without interning. Returns `None` when the value is a
    /// string (or out-of-range integer) the dictionary has never seen — in
    /// which case no encoded datum can equal it.
    pub fn try_encode(&self, value: &Value) -> Option<Code> {
        match value {
            Value::Null => Some(Code::NULL),
            Value::Bool(b) => Some(Code(TAG_BOOL | (u64::from(*b) << TAG_BITS))),
            Value::Int(i) if (INLINE_INT_MIN..=INLINE_INT_MAX).contains(i) => {
                Some(Code(TAG_INT | ((*i as u64) << TAG_BITS)))
            }
            Value::Int(i) => self
                .by_big_int
                .get(i)
                .map(|&idx| Code(TAG_BIG_INT | (u64::from(idx) << TAG_BITS))),
            Value::Str(s) => self
                .by_string
                .get(s.as_str())
                .map(|&sym| Code(TAG_SYM | (u64::from(sym) << TAG_BITS))),
        }
    }

    /// Encodes every value of a tuple (interning), in attribute order.
    pub fn encode_tuple(&mut self, tuple: &Tuple) -> Vec<Code> {
        tuple.values().iter().map(|v| self.encode(v)).collect()
    }

    /// Decodes a code back to the value it was issued for.
    ///
    /// # Panics
    ///
    /// Panics when the code was not issued by this dictionary (a symbol index
    /// out of range) — codes are only meaningful relative to their issuing
    /// dictionary.
    pub fn decode(&self, code: Code) -> Value {
        let payload = code.0 >> TAG_BITS;
        match code.0 & TAG_MASK {
            TAG_NULL => Value::Null,
            TAG_BOOL => Value::Bool(payload != 0),
            TAG_INT => {
                // Sign-extend the 61-bit payload.
                Value::Int(((payload << TAG_BITS) as i64) >> TAG_BITS)
            }
            TAG_BIG_INT => Value::Int(self.big_ints[payload as usize]),
            TAG_SYM => Value::Str(self.strings[payload as usize].to_string()),
            _ => unreachable!("invalid code tag"),
        }
    }

    /// Decodes a slice of codes to values.
    pub fn decode_all(&self, codes: &[Code]) -> Vec<Value> {
        codes.iter().map(|&c| self.decode(c)).collect()
    }
}

/// Inline capacity of a [`CodeVec`]: projection keys of up to this many
/// attributes never touch the heap. The eCFD workloads key groups on one or
/// two attributes, so four covers everything the paper measures.
pub const INLINE_CODES: usize = 4;

/// A small-vector of [`Code`]s used as a projection key (`t[X]`, `t[Y]`).
///
/// Keys of at most [`INLINE_CODES`] codes are stored inline; longer keys
/// spill to the heap. Equality, ordering and hashing are over the code
/// slice, so inline and spilled keys with the same codes compare equal.
#[derive(Debug, Clone)]
pub enum CodeVec {
    /// At most [`INLINE_CODES`] codes stored in place.
    Inline {
        /// Number of live codes in `buf`.
        len: u8,
        /// The code buffer; only `buf[..len]` is meaningful.
        buf: [Code; INLINE_CODES],
    },
    /// More than [`INLINE_CODES`] codes, heap-allocated.
    Spilled(Vec<Code>),
}

impl CodeVec {
    /// An empty key.
    pub fn new() -> Self {
        CodeVec::Inline {
            len: 0,
            buf: [Code::NULL; INLINE_CODES],
        }
    }

    /// Builds a key from an exact-size iterator of codes.
    pub fn from_iter_exact(codes: impl ExactSizeIterator<Item = Code>) -> Self {
        if codes.len() <= INLINE_CODES {
            let mut buf = [Code::NULL; INLINE_CODES];
            let mut len = 0u8;
            for code in codes {
                buf[len as usize] = code;
                len += 1;
            }
            CodeVec::Inline { len, buf }
        } else {
            CodeVec::Spilled(codes.collect())
        }
    }

    /// The codes as a slice.
    pub fn as_slice(&self) -> &[Code] {
        match self {
            CodeVec::Inline { len, buf } => &buf[..*len as usize],
            CodeVec::Spilled(v) => v,
        }
    }

    /// Number of codes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the key has no codes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for CodeVec {
    fn default() -> Self {
        CodeVec::new()
    }
}

impl FromIterator<Code> for CodeVec {
    fn from_iter<I: IntoIterator<Item = Code>>(iter: I) -> Self {
        let codes: Vec<Code> = iter.into_iter().collect();
        CodeVec::from_iter_exact(codes.into_iter())
    }
}

impl PartialEq for CodeVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for CodeVec {}

impl PartialOrd for CodeVec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CodeVec {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for CodeVec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for code in self.as_slice() {
            state.write_u64(code.raw());
        }
        state.write_u8(0xff); // length terminator
    }
}

/// A fast, deterministic multiply-xor hasher for code-keyed maps (the
/// FxHash construction). Codes are already high-entropy words, so the
/// default SipHash's collision resistance buys nothing here while costing
/// most of the group-lookup budget.
#[derive(Debug, Default, Clone)]
pub struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.write_u64(u64::from(i));
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0.rotate_left(5) ^ i).wrapping_mul(FX_SEED);
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by codes / code keys with the deterministic fast hasher.
pub type CodeMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Deterministically hashes a constraint index plus a code key — used to
/// assign enforcement groups to shards so that every member of a group lands
/// on the same shard regardless of which worker scanned it.
pub fn shard_of(ci: usize, key: &CodeVec, num_shards: usize) -> usize {
    debug_assert!(num_shards > 0);
    let mut h = FxHasher::default();
    h.write_usize(ci);
    for code in key.as_slice() {
        h.write_u64(code.raw());
    }
    (h.finish() % num_shards as u64) as usize
}

/// Deterministically hashes one attribute *value* to a shard index — the
/// row router of the sharded serving layer. Unlike [`shard_of`] this hashes
/// the decoded value (type tag plus content), not a dictionary code, so the
/// assignment is stable across processes, restarts and dictionaries: the
/// same value always routes to the same shard, which is what recovery replay
/// and cross-shard group completeness both depend on. The tag bytes match
/// the WAL value encoding (0 = null, 1 = int, 2 = bool, 3 = str).
pub fn shard_of_value(value: &crate::value::Value, num_shards: usize) -> usize {
    use crate::value::Value;
    debug_assert!(num_shards > 0);
    let mut h = FxHasher::default();
    match value {
        Value::Null => h.write_u8(0),
        Value::Int(i) => {
            h.write_u8(1);
            h.write_u64(*i as u64);
        }
        Value::Bool(b) => {
            h.write_u8(2);
            h.write_u8(u8::from(*b));
        }
        Value::Str(s) => {
            h.write_u8(3);
            h.write(s.as_bytes());
        }
    }
    (h.finish() % num_shards as u64) as usize
}

/// Per-attribute code columns derived from a [`Relation`], with a row-id
/// index so it can be kept up to date under row insertion and removal. See
/// the module docs for the invalidation rules.
#[derive(Debug, Clone, Default)]
pub struct ColumnarView {
    columns: Vec<Vec<Code>>,
    row_ids: Vec<RowId>,
    positions: CodeMap<RowId, usize>,
}

impl ColumnarView {
    /// Encodes every column of `relation` through `dict`.
    pub fn build(relation: &Relation, dict: &mut Dictionary) -> Self {
        Self::build_prefix(relation, relation.schema().arity(), dict)
    }

    /// Encodes the first `num_columns` attributes of `relation` — used by the
    /// incremental detector, whose stored table carries detector-managed flag
    /// columns after the base attributes.
    pub fn build_prefix(relation: &Relation, num_columns: usize, dict: &mut Dictionary) -> Self {
        let mut columns = vec![Vec::with_capacity(relation.len()); num_columns];
        let mut row_ids = Vec::with_capacity(relation.len());
        let mut positions = CodeMap::default();
        for (row_id, tuple) in relation.iter() {
            positions.insert(row_id, row_ids.len());
            row_ids.push(row_id);
            for (col, value) in columns.iter_mut().zip(tuple.values()) {
                col.push(dict.encode(value));
            }
        }
        ColumnarView {
            columns,
            row_ids,
            positions,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.row_ids.len()
    }

    /// Number of encoded columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The code column of one attribute.
    pub fn column(&self, attr: AttrId) -> &[Code] {
        &self.columns[attr.index()]
    }

    /// The row id stored at a position.
    pub fn row_id(&self, pos: usize) -> RowId {
        self.row_ids[pos]
    }

    /// All row ids, in storage order.
    pub fn row_ids(&self) -> &[RowId] {
        &self.row_ids
    }

    /// The code at (row position, attribute).
    pub fn code(&self, pos: usize, attr: AttrId) -> Code {
        self.columns[attr.index()][pos]
    }

    /// The projection key of a row over the given attributes (the coded
    /// `t[Z]`).
    pub fn key(&self, pos: usize, attrs: &[AttrId]) -> CodeVec {
        CodeVec::from_iter_exact(attrs.iter().map(|a| self.columns[a.index()][pos]))
    }

    /// The position of a row id, if the view still contains it.
    pub fn position(&self, row: RowId) -> Option<usize> {
        self.positions.get(&row).copied()
    }

    /// Appends a row. `codes` must hold exactly [`ColumnarView::num_columns`]
    /// codes issued by the view's dictionary.
    pub fn insert(&mut self, row: RowId, codes: &[Code]) {
        debug_assert_eq!(codes.len(), self.columns.len());
        self.positions.insert(row, self.row_ids.len());
        self.row_ids.push(row);
        for (col, &code) in self.columns.iter_mut().zip(codes) {
            col.push(code);
        }
    }

    /// Removes a row by id (swap-remove; positions of other rows are kept
    /// consistent, storage order is not preserved). Returns whether the row
    /// was present.
    pub fn remove(&mut self, row: RowId) -> bool {
        let Some(pos) = self.positions.remove(&row) else {
            return false;
        };
        let last = self.row_ids.len() - 1;
        self.row_ids.swap_remove(pos);
        for col in &mut self.columns {
            col.swap_remove(pos);
        }
        if pos != last {
            self.positions.insert(self.row_ids[pos], pos);
        }
        true
    }

    /// The codes of one row across all columns, in attribute order.
    pub fn row_codes(&self, pos: usize) -> Vec<Code> {
        self.columns.iter().map(|col| col[pos]).collect()
    }

    /// Row positions whose first `codes.len()` columns equal `codes` — the
    /// coded equivalent of matching a deletion victim by base-attribute
    /// prefix.
    pub fn matching_prefix(&self, codes: &[Code]) -> Vec<usize> {
        debug_assert!(codes.len() <= self.columns.len());
        (0..self.num_rows())
            .filter(|&pos| {
                codes
                    .iter()
                    .enumerate()
                    .all(|(c, &code)| self.columns[c][pos] == code)
            })
            .collect()
    }
}

/// An immutable, cheaply cloneable `(view, dictionary)` pair: one consistent
/// point-in-time encoding of a relation.
///
/// A live [`ColumnarView`] is only meaningful next to the (growing)
/// [`Dictionary`] that issued its codes, and both mutate as deltas stream in.
/// A `FrozenView` pins the pair: the view and a clone of the dictionary taken
/// at the same instant, shared behind [`Arc`]s so that handing a copy to
/// another thread is two reference-count bumps. Nothing behind the handle can
/// change, so any number of threads may scan, decode and re-detect against it
/// without synchronisation — this is the unit the serving layer publishes as
/// an epoch snapshot.
///
/// Because a dictionary only ever grows, codes inside the frozen view remain
/// valid against *later* states of the source dictionary; the converse does
/// not hold (a code interned after the freeze is unknown to the frozen
/// dictionary), which is why the pair is kept together.
///
/// [`Arc`]: std::sync::Arc
#[derive(Debug, Clone)]
pub struct FrozenView {
    view: std::sync::Arc<ColumnarView>,
    dict: std::sync::Arc<Dictionary>,
}

impl FrozenView {
    /// Freezes a view together with the dictionary state that encoded it.
    pub fn new(view: ColumnarView, dict: Dictionary) -> Self {
        FrozenView {
            view: std::sync::Arc::new(view),
            dict: std::sync::Arc::new(dict),
        }
    }

    /// The frozen code columns.
    pub fn view(&self) -> &ColumnarView {
        &self.view
    }

    /// The dictionary state that issued the view's codes.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Number of frozen rows.
    pub fn num_rows(&self) -> usize {
        self.view.num_rows()
    }

    /// Decodes the row stored at `pos` back to values, in attribute order.
    pub fn decode_row(&self, pos: usize) -> Vec<crate::value::Value> {
        self.dict.decode_all(&self.view.row_codes(pos))
    }

    /// Decodes every frozen row as `(RowId, values)` pairs, in storage order.
    pub fn decode_rows(&self) -> Vec<(RowId, Vec<crate::value::Value>)> {
        (0..self.view.num_rows())
            .map(|pos| (self.view.row_id(pos), self.decode_row(pos)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Schema};

    fn schema() -> Schema {
        Schema::builder("t")
            .attr("CT", DataType::Str)
            .attr("N", DataType::Int)
            .attr("OK", DataType::Bool)
            .build()
    }

    #[test]
    fn encoding_is_canonical_and_round_trips() {
        let mut dict = Dictionary::new();
        let values = [
            Value::Null,
            Value::bool(true),
            Value::bool(false),
            Value::int(0),
            Value::int(-1),
            Value::int(INLINE_INT_MAX),
            Value::int(INLINE_INT_MIN),
            Value::int(i64::MAX),
            Value::int(i64::MIN),
            Value::str(""),
            Value::str("@"),
            Value::str("Albany"),
            Value::str("Zürich"),
            Value::str("東京"),
        ];
        let codes: Vec<Code> = values.iter().map(|v| dict.encode(v)).collect();
        // Distinct values get distinct codes; equal values re-encode equal.
        for (i, v) in values.iter().enumerate() {
            assert_eq!(dict.encode(v), codes[i], "re-encoding {v:?} is stable");
            assert_eq!(dict.try_encode(v), Some(codes[i]));
            assert_eq!(dict.decode(codes[i]), *v, "decode round-trips {v:?}");
            for (j, other) in codes.iter().enumerate() {
                assert_eq!(i == j, codes[i] == *other, "codes {i} vs {j}");
            }
        }
    }

    #[test]
    fn try_encode_refuses_unseen_symbols() {
        let dict = Dictionary::new();
        assert_eq!(dict.try_encode(&Value::str("ghost")), None);
        assert_eq!(dict.try_encode(&Value::int(i64::MAX)), None);
        assert_eq!(dict.try_encode(&Value::int(7)), Some(Code(7 << 3 | 2)));
        assert_eq!(dict.try_encode(&Value::Null), Some(Code::NULL));
    }

    #[test]
    fn interning_is_deterministic_across_dictionaries() {
        let feed = ["a", "b", "a", "c", "", "@", "b"];
        let mut d1 = Dictionary::new();
        let mut d2 = Dictionary::new();
        let c1: Vec<Code> = feed.iter().map(|s| d1.encode(&Value::str(*s))).collect();
        let c2: Vec<Code> = feed.iter().map(|s| d2.encode(&Value::str(*s))).collect();
        assert_eq!(c1, c2);
    }

    #[test]
    fn code_vec_inline_and_spilled_compare_equal() {
        let codes: Vec<Code> = (0..6).map(|i| Code(TAG_INT | (i << TAG_BITS))).collect();
        let small = CodeVec::from_iter_exact(codes[..3].iter().copied());
        assert!(matches!(small, CodeVec::Inline { .. }));
        assert_eq!(small.len(), 3);
        let large = CodeVec::from_iter_exact(codes.iter().copied());
        assert!(matches!(large, CodeVec::Spilled(_)));
        assert_eq!(large.as_slice(), &codes[..]);

        let same: CodeVec = codes[..3].iter().copied().collect();
        assert_eq!(small, same);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher as _};
        let hash = |k: &CodeVec| {
            let mut h = DefaultHasher::new();
            k.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&small), hash(&same));
        assert!(CodeVec::new().is_empty());
    }

    #[test]
    fn shard_assignment_is_deterministic_and_in_range() {
        let key: CodeVec = [Code(42), Code(7)].into_iter().collect();
        for shards in [1usize, 2, 4, 7] {
            let s = shard_of(3, &key, shards);
            assert!(s < shards);
            assert_eq!(s, shard_of(3, &key, shards));
        }
    }

    #[test]
    fn frozen_view_is_isolated_from_later_mutation() {
        let mut rel = Relation::with_tuples(
            schema(),
            [
                Tuple::new(vec![Value::str("Albany"), Value::int(1), Value::bool(true)]),
                Tuple::new(vec![Value::str("NYC"), Value::int(2), Value::bool(false)]),
            ],
        )
        .unwrap();
        let mut dict = Dictionary::new();
        let mut view = ColumnarView::build(&rel, &mut dict);
        let frozen = FrozenView::new(view.clone(), dict.clone());
        let reader = frozen.clone(); // cheap Arc clone, shareable across threads

        // Mutate the live view and dictionary behind the frozen handle's back.
        let t = Tuple::new(vec![Value::str("Troy"), Value::int(3), Value::bool(true)]);
        let codes = dict.encode_tuple(&t);
        let id = rel.insert(t).unwrap();
        view.insert(id, &codes);

        assert_eq!(reader.num_rows(), 2, "the freeze predates the insert");
        assert_eq!(reader.dict().num_strings(), 2, "`Troy` was interned later");
        let rows = reader.decode_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].1,
            vec![Value::str("Albany"), Value::int(1), Value::bool(true)]
        );
        // A relation rebuilt from the frozen rows preserves the row ids.
        let copy = Relation::with_rows(
            schema(),
            rows.into_iter().map(|(id, vs)| (id, Tuple::new(vs))),
        )
        .unwrap();
        assert_eq!(copy.len(), 2);
        for (pos, row) in reader.view().row_ids().iter().enumerate() {
            assert_eq!(
                copy.get(*row).unwrap().values(),
                reader.decode_row(pos).as_slice()
            );
        }
    }

    #[test]
    fn view_builds_and_maintains_rows() {
        let mut rel = Relation::with_tuples(
            schema(),
            [
                Tuple::new(vec![Value::str("Albany"), Value::int(1), Value::bool(true)]),
                Tuple::new(vec![Value::str("NYC"), Value::int(2), Value::bool(false)]),
            ],
        )
        .unwrap();
        let mut dict = Dictionary::new();
        let mut view = ColumnarView::build(&rel, &mut dict);
        assert_eq!(view.num_rows(), 2);
        assert_eq!(view.num_columns(), 3);
        let albany = dict.try_encode(&Value::str("Albany")).unwrap();
        assert_eq!(view.code(0, AttrId(0)), albany);

        // Mirror an insert.
        let t = Tuple::new(vec![Value::str("Troy"), Value::int(3), Value::bool(true)]);
        let codes = dict.encode_tuple(&t);
        let id = rel.insert(t).unwrap();
        view.insert(id, &codes);
        assert_eq!(view.num_rows(), 3);
        assert_eq!(view.position(id), Some(2));
        assert_eq!(
            view.key(2, &[AttrId(0), AttrId(1)]).as_slice(),
            &[codes[0], codes[1]]
        );

        // Mirror a delete (swap-remove keeps positions consistent).
        let first = rel.row_ids()[0];
        rel.delete(first).unwrap();
        assert!(view.remove(first));
        assert!(!view.remove(first));
        assert_eq!(view.num_rows(), 2);
        for (pos, row) in view.row_ids().iter().enumerate() {
            assert_eq!(view.position(*row), Some(pos));
            let stored = rel.get(*row).unwrap();
            for c in 0..view.num_columns() {
                assert_eq!(dict.decode(view.code(pos, AttrId(c))), stored.values()[c]);
            }
        }

        // Prefix matching finds rows by coded victim.
        let troy_codes = dict.encode_tuple(&Tuple::new(vec![
            Value::str("Troy"),
            Value::int(3),
            Value::bool(true),
        ]));
        let hits = view.matching_prefix(&troy_codes);
        assert_eq!(hits.len(), 1);
        assert_eq!(view.row_id(hits[0]), id);
    }
}
