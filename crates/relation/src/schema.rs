//! Schemas, attributes and attribute domains.
//!
//! The eCFD formalism distinguishes attributes with *finite* domains from
//! attributes with *infinite* domains (Section III of the paper analyses both
//! cases), so [`Domain`] captures that distinction explicitly and the
//! satisfiability machinery in `ecfd-core` consults it.

use crate::error::{RelationError, Result};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Index of an attribute inside a schema (position in the attribute list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrId(pub usize);

impl AttrId {
    /// Returns the underlying position.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Base type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit integers.
    Int,
    /// UTF-8 strings.
    Str,
    /// Booleans (used for the SV/MV violation flags).
    Bool,
}

impl DataType {
    /// Checks whether `value` inhabits this type. `NULL` inhabits every type.
    pub fn admits(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (DataType::Int, Value::Int(_))
                | (DataType::Str, Value::Str(_))
                | (DataType::Bool, Value::Bool(_))
        )
    }

    /// Human readable type name.
    pub fn name(&self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Str => "STR",
            DataType::Bool => "BOOL",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Domain of an attribute: either all values of the base type (infinite for
/// `Int`/`Str`), or an explicitly enumerated finite set.
///
/// The paper's Proposition 3.3 hinges on whether finite-domain attributes are
/// present, so the distinction is first-class here.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Domain {
    /// The full (conceptually infinite) domain of the base type.
    ///
    /// `Bool` is technically finite but we follow the paper in treating the
    /// declared enumeration as the only "finite domain" case.
    Unbounded(DataType),
    /// An explicit finite set of admissible values, all of the same base type.
    Finite(DataType, BTreeSet<Value>),
}

impl Domain {
    /// Creates a finite domain from an iterator of values.
    pub fn finite(ty: DataType, values: impl IntoIterator<Item = Value>) -> Self {
        Domain::Finite(ty, values.into_iter().collect())
    }

    /// The base type of the domain.
    pub fn data_type(&self) -> DataType {
        match self {
            Domain::Unbounded(t) | Domain::Finite(t, _) => *t,
        }
    }

    /// True if the domain is an explicitly enumerated finite set.
    pub fn is_finite(&self) -> bool {
        matches!(self, Domain::Finite(..))
    }

    /// The enumerated values, if finite.
    pub fn values(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Domain::Finite(_, vs) => Some(vs),
            Domain::Unbounded(_) => None,
        }
    }

    /// Whether `value` is admissible in this domain.
    pub fn contains(&self, value: &Value) -> bool {
        match self {
            Domain::Unbounded(t) => t.admits(value),
            Domain::Finite(t, vs) => t.admits(value) && (value.is_null() || vs.contains(value)),
        }
    }

    /// Picks some value of the domain that is *not* in `exclude`, if one exists.
    ///
    /// For unbounded domains a fresh value is synthesised; for finite domains the
    /// enumeration is scanned. This is the "extra value outside the active
    /// domain" the paper's satisfiability reduction needs.
    pub fn fresh_value_outside(&self, exclude: &BTreeSet<Value>) -> Option<Value> {
        match self {
            Domain::Finite(_, vs) => vs.iter().find(|v| !exclude.contains(*v)).cloned(),
            Domain::Unbounded(DataType::Int) => {
                let mut candidate = exclude
                    .iter()
                    .filter_map(|v| v.as_int())
                    .max()
                    .unwrap_or(0)
                    .saturating_add(1);
                loop {
                    let v = Value::Int(candidate);
                    if !exclude.contains(&v) {
                        return Some(v);
                    }
                    candidate = candidate.saturating_add(1);
                }
            }
            Domain::Unbounded(DataType::Str) => {
                for i in 0.. {
                    let v = Value::str(format!("⊥fresh{i}"));
                    if !exclude.contains(&v) {
                        return Some(v);
                    }
                }
                None
            }
            Domain::Unbounded(DataType::Bool) => [Value::Bool(false), Value::Bool(true)]
                .into_iter()
                .find(|v| !exclude.contains(v)),
        }
    }
}

/// A named, typed attribute of a relation schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, e.g. `"CT"`.
    pub name: String,
    /// Declared domain.
    pub domain: Domain,
}

impl Attribute {
    /// Creates an attribute with an unbounded domain of the given type.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Attribute {
            name: name.into(),
            domain: Domain::Unbounded(ty),
        }
    }

    /// Creates an attribute with a finite domain.
    pub fn with_finite_domain(
        name: impl Into<String>,
        ty: DataType,
        values: impl IntoIterator<Item = Value>,
    ) -> Self {
        Attribute {
            name: name.into(),
            domain: Domain::finite(ty, values),
        }
    }

    /// Base type of the attribute.
    pub fn data_type(&self) -> DataType {
        self.domain.data_type()
    }
}

/// An ordered list of attributes describing a relation, plus the relation name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    name: String,
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Creates a schema from a name and attribute list.
    ///
    /// Returns an error if two attributes share a name.
    pub fn try_new(name: impl Into<String>, attributes: Vec<Attribute>) -> Result<Self> {
        let name = name.into();
        let mut seen = BTreeSet::new();
        for a in &attributes {
            if !seen.insert(a.name.clone()) {
                return Err(RelationError::Schema(format!(
                    "duplicate attribute `{}` in schema `{}`",
                    a.name, name
                )));
            }
        }
        Ok(Schema { name, attributes })
    }

    /// Starts a fluent builder for a schema.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            name: name.into(),
            attributes: Vec::new(),
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// The attribute at `id`.
    pub fn attribute(&self, id: AttrId) -> Option<&Attribute> {
        self.attributes.get(id.0)
    }

    /// Looks up an attribute position by name (case-sensitive).
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .map(AttrId)
    }

    /// Looks up an attribute position by name, returning an error naming the
    /// relation when absent.
    pub fn require_attr(&self, name: &str) -> Result<AttrId> {
        self.attr_id(name)
            .ok_or_else(|| RelationError::UnknownAttribute {
                name: name.to_string(),
                relation: self.name.clone(),
            })
    }

    /// Names of all attributes, in order.
    pub fn attr_names(&self) -> Vec<&str> {
        self.attributes.iter().map(|a| a.name.as_str()).collect()
    }

    /// Returns a new schema that appends the given attributes (used to extend a
    /// relation with the SV / MV violation flags, Section V of the paper).
    pub fn extend(&self, extra: Vec<Attribute>) -> Result<Schema> {
        let mut attrs = self.attributes.clone();
        attrs.extend(extra);
        Schema::try_new(self.name.clone(), attrs)
    }

    /// Returns a copy of the schema under a different relation name.
    pub fn renamed(&self, name: impl Into<String>) -> Schema {
        Schema {
            name: name.into(),
            attributes: self.attributes.clone(),
        }
    }

    /// Returns a schema containing only the attributes named in `names`, in the
    /// given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut attrs = Vec::with_capacity(names.len());
        for n in names {
            let id = self.require_attr(n)?;
            attrs.push(self.attributes[id.0].clone());
        }
        Schema::try_new(self.name.clone(), attrs)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.data_type())?;
        }
        write!(f, ")")
    }
}

/// Fluent builder for [`Schema`].
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    name: String,
    attributes: Vec<Attribute>,
}

impl SchemaBuilder {
    /// Adds an attribute with an unbounded domain.
    pub fn attr(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.attributes.push(Attribute::new(name, ty));
        self
    }

    /// Adds an attribute with an explicitly enumerated finite domain.
    pub fn finite_attr(
        mut self,
        name: impl Into<String>,
        ty: DataType,
        values: impl IntoIterator<Item = Value>,
    ) -> Self {
        self.attributes
            .push(Attribute::with_finite_domain(name, ty, values));
        self
    }

    /// Finalises the schema, panicking on duplicate attribute names.
    ///
    /// Use [`SchemaBuilder::try_build`] in code paths where duplicates can come
    /// from user input.
    pub fn build(self) -> Schema {
        self.try_build().expect("invalid schema")
    }

    /// Finalises the schema, returning an error on duplicate attribute names.
    pub fn try_build(self) -> Result<Schema> {
        Schema::try_new(self.name, self.attributes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cust_schema() -> Schema {
        Schema::builder("cust")
            .attr("AC", DataType::Str)
            .attr("PN", DataType::Str)
            .attr("NM", DataType::Str)
            .attr("STR", DataType::Str)
            .attr("CT", DataType::Str)
            .attr("ZIP", DataType::Str)
            .build()
    }

    #[test]
    fn builder_builds_expected_schema() {
        let s = cust_schema();
        assert_eq!(s.name(), "cust");
        assert_eq!(s.arity(), 6);
        assert_eq!(s.attr_names(), vec!["AC", "PN", "NM", "STR", "CT", "ZIP"]);
        assert_eq!(s.attr_id("CT"), Some(AttrId(4)));
        assert_eq!(s.attr_id("ct"), None, "lookups are case-sensitive");
    }

    #[test]
    fn duplicate_attribute_is_rejected() {
        let r = Schema::builder("t")
            .attr("A", DataType::Int)
            .attr("A", DataType::Str)
            .try_build();
        assert!(matches!(r, Err(RelationError::Schema(_))));
    }

    #[test]
    fn require_attr_reports_relation_name() {
        let s = cust_schema();
        let err = s.require_attr("NOPE").unwrap_err();
        match err {
            RelationError::UnknownAttribute { name, relation } => {
                assert_eq!(name, "NOPE");
                assert_eq!(relation, "cust");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn extend_appends_violation_flags() {
        let s = cust_schema();
        let extended = s
            .extend(vec![
                Attribute::new("SV", DataType::Bool),
                Attribute::new("MV", DataType::Bool),
            ])
            .unwrap();
        assert_eq!(extended.arity(), 8);
        assert_eq!(extended.attr_id("SV"), Some(AttrId(6)));
        assert_eq!(extended.attr_id("MV"), Some(AttrId(7)));
    }

    #[test]
    fn project_selects_and_reorders() {
        let s = cust_schema();
        let p = s.project(&["CT", "AC"]).unwrap();
        assert_eq!(p.attr_names(), vec!["CT", "AC"]);
        assert!(s.project(&["CT", "nope"]).is_err());
    }

    #[test]
    fn datatype_admits_values() {
        assert!(DataType::Int.admits(&Value::int(1)));
        assert!(DataType::Int.admits(&Value::Null));
        assert!(!DataType::Int.admits(&Value::str("x")));
        assert!(DataType::Str.admits(&Value::str("x")));
        assert!(DataType::Bool.admits(&Value::bool(true)));
    }

    #[test]
    fn finite_domain_contains_and_fresh_values() {
        let d = Domain::finite(DataType::Str, ["a", "b", "c"].into_iter().map(Value::str));
        assert!(d.is_finite());
        assert!(d.contains(&Value::str("a")));
        assert!(!d.contains(&Value::str("z")));

        let exclude: BTreeSet<_> = [Value::str("a"), Value::str("b")].into_iter().collect();
        assert_eq!(d.fresh_value_outside(&exclude), Some(Value::str("c")));
        let all: BTreeSet<_> = ["a", "b", "c"].into_iter().map(Value::str).collect();
        assert_eq!(d.fresh_value_outside(&all), None);
    }

    #[test]
    fn unbounded_domain_always_has_fresh_values() {
        let d = Domain::Unbounded(DataType::Int);
        let exclude: BTreeSet<_> = (0..100).map(Value::int).collect();
        let fresh = d.fresh_value_outside(&exclude).unwrap();
        assert!(!exclude.contains(&fresh));

        let d = Domain::Unbounded(DataType::Str);
        let exclude: BTreeSet<_> = ["x", "y"].into_iter().map(Value::str).collect();
        let fresh = d.fresh_value_outside(&exclude).unwrap();
        assert!(!exclude.contains(&fresh));
    }

    #[test]
    fn schema_display_is_readable() {
        let s = Schema::builder("t")
            .attr("A", DataType::Int)
            .attr("B", DataType::Str)
            .build();
        assert_eq!(s.to_string(), "t(A: INT, B: STR)");
    }
}
