//! Golden regression pins for the deterministic shard-routing hashes.
//!
//! Both the detection layer's group placement ([`shard_of`]) and the sharded
//! serving layer's row router ([`shard_of_value`]) depend on [`FxHasher`]
//! producing the *same* output forever: a WAL written by one build must
//! recover on a later build with every row routed to the same shard, and a
//! checkpointed merged report must re-verify byte-for-byte. If any assertion
//! here fails, the change silently breaks crash recovery of every existing
//! sharded WAL directory — bump a format version instead of editing the
//! goldens.

use ecfd_relation::{shard_of, shard_of_value, CodeVec, Dictionary, FxHasher, Value};
use std::hash::Hasher;

/// The raw hasher: seed, rotation and multiply are all pinned.
#[test]
fn fx_hasher_outputs_are_pinned() {
    let mut h = FxHasher::default();
    h.write(b"ecfd");
    assert_eq!(h.finish(), 0x3ea3_8849_418f_ec3b);

    let mut h = FxHasher::default();
    h.write_u64(0);
    assert_eq!(h.finish(), 0);

    let mut h = FxHasher::default();
    h.write_u64(1);
    assert_eq!(h.finish(), 0x517c_c1b7_2722_0a95);

    let mut h = FxHasher::default();
    h.write_u64(0xdead_beef);
    h.write_u64(0xcafe);
    assert_eq!(h.finish(), 0x56d6_2b5e_c321_e5fa);
}

/// Value routing: the decoded-value hash behind `--shard-key`. These
/// assignments are what `wal_dir/shard-N/` segment membership encodes on
/// disk, for every type tag.
#[test]
fn shard_of_value_assignments_are_pinned() {
    let values = [
        Value::from("Albany"),
        Value::from("Troy"),
        Value::from("NYC"),
        Value::from("LI"),
        Value::from("518"),
        Value::from("212"),
        Value::from(""),
        Value::Int(0),
        Value::Int(42),
        Value::Int(-1),
        Value::Bool(false),
        Value::Bool(true),
        Value::Null,
    ];
    let at2: Vec<usize> = values.iter().map(|v| shard_of_value(v, 2)).collect();
    let at4: Vec<usize> = values.iter().map(|v| shard_of_value(v, 4)).collect();
    let at7: Vec<usize> = values.iter().map(|v| shard_of_value(v, 7)).collect();
    assert_eq!(at2, [1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 1, 0]);
    assert_eq!(at4, [3, 2, 0, 3, 0, 0, 3, 2, 0, 1, 0, 1, 0]);
    assert_eq!(at7, [2, 0, 4, 6, 6, 2, 0, 0, 0, 2, 0, 0, 0]);

    // One shard: everything routes to 0, whatever the value.
    assert!(values.iter().all(|v| shard_of_value(v, 1) == 0));
}

/// Group placement: constraint index + coded key, as used by the parallel
/// scan's group sharding. Codes come from a fresh dictionary, whose issue
/// order (and therefore code words) is deterministic.
#[test]
fn shard_of_group_keys_is_pinned() {
    let mut dict = Dictionary::new();
    let codes: Vec<_> = ["Albany", "Troy", "NYC"]
        .iter()
        .map(|s| dict.encode(&Value::from(*s)))
        .collect();

    let key: CodeVec = codes.iter().copied().collect();
    let assignments: Vec<usize> = (0..4).map(|ci| shard_of(ci, &key, 4)).collect();
    assert_eq!(assignments, [3, 1, 2, 1]);

    let empty = CodeVec::new();
    let empties: Vec<usize> = (0..4).map(|ci| shard_of(ci, &empty, 4)).collect();
    assert_eq!(empties, [0, 1, 2, 3]);

    // Same codes, different constraint → (almost always) different shard;
    // pinned rather than assumed.
    let single: CodeVec = codes[..1].iter().copied().collect();
    assert_eq!(shard_of(0, &single, 8), 4);
    assert_eq!(shard_of(1, &single, 8), 6);
}

/// The two routing functions must agree with themselves across dictionary
/// states: `shard_of_value` ignores dictionaries entirely, so interning
/// unrelated values first cannot move a row.
#[test]
fn value_routing_is_dictionary_independent() {
    let mut dict = Dictionary::new();
    let before = shard_of_value(&Value::from("Albany"), 4);
    for i in 0..100 {
        dict.intern(&format!("filler-{i}"));
    }
    dict.encode(&Value::from("Albany"));
    let after = shard_of_value(&Value::from("Albany"), 4);
    assert_eq!(before, after);
    assert_eq!(before, 3, "golden: Albany routes to shard 3 of 4");
}
