//! Quickstart: define eCFDs, load data, find the dirty tuples.
//!
//! Reproduces the running example of the paper (Fig. 1 + Fig. 2): the `cust`
//! instance `D0` and the constraints φ1 / φ2, detected three ways — with the
//! reference semantics, with the SQL-based BATCHDETECT, and printing the
//! generated SQL so you can see what would run on a real RDBMS.
//!
//! Run with: `cargo run --example quickstart`

use ecfd::prelude::*;

fn main() {
    // --- the cust relation of Fig. 1 -------------------------------------
    let schema = Schema::builder("cust")
        .attr("AC", DataType::Str)
        .attr("PN", DataType::Str)
        .attr("NM", DataType::Str)
        .attr("STR", DataType::Str)
        .attr("CT", DataType::Str)
        .attr("ZIP", DataType::Str)
        .build();
    let d0 = Relation::with_tuples(
        schema.clone(),
        [
            Tuple::from_iter(["718", "1111111", "Mike", "Tree Ave.", "Albany", "12238"]),
            Tuple::from_iter(["518", "2222222", "Joe", "Elm Str.", "Colonie", "12205"]),
            Tuple::from_iter(["518", "2222222", "Jim", "Oak Ave.", "Troy", "12181"]),
            Tuple::from_iter(["100", "1111111", "Rick", "8th Ave.", "NYC", "10001"]),
            Tuple::from_iter(["212", "3333333", "Ben", "5th Ave.", "NYC", "10016"]),
            Tuple::from_iter(["646", "4444444", "Ian", "High St.", "NYC", "10011"]),
        ],
    )
    .expect("D0 matches the cust schema");
    println!("Instance D0:\n{}", d0.render());

    // --- the eCFDs of Fig. 2, in the textual syntax ----------------------
    let constraints = parse_ecfds(
        "// φ1: outside NYC/LI the city determines the area code; the capital\n\
         // district is bound to 518.\n\
         cust: [CT] -> [AC] | [], { !{NYC, LI} || _ ; {Albany, Troy, Colonie} || {518} }\n\
         // φ2: NYC numbers use one of the five NYC area codes.\n\
         cust: [CT] -> [] | [AC], { {NYC} || {212, 718, 646, 347, 917} }\n",
    )
    .expect("the constraints parse");
    for (i, c) in constraints.iter().enumerate() {
        println!("φ{}: {}", i + 1, c);
    }

    // --- 1. reference semantics ------------------------------------------
    let result = check_all(&d0, &constraints).expect("constraints apply to cust");
    println!(
        "\nReference semantics: {} single-tuple violation(s), {} multi-tuple violation(s)",
        result.violations().num_sv(),
        result.violations().num_mv()
    );
    for v in result.violations().violations() {
        let tuple = d0.get(v.row).expect("violating row exists");
        println!(
            "  t{} violates φ{} ({:?}): {}",
            v.row.as_u64() + 1,
            v.constraint + 1,
            v.kind,
            tuple
        );
    }

    // --- 2. SQL-based BATCHDETECT ----------------------------------------
    let detector = BatchDetector::new(&schema, &constraints).expect("constraints encode");
    println!("\nGenerated detection statements (fixed number, independent of |Σ|):");
    for sql in detector.statements() {
        let head: String = sql.chars().take(100).collect();
        println!("  {head}…");
    }
    let mut catalog = Catalog::new();
    catalog.create(d0).expect("fresh catalog");
    let report = detector.detect(&mut catalog).expect("BATCHDETECT runs");
    println!(
        "\nBATCHDETECT: SV = {}, MV = {}, vio(D0) = {} tuple(s)",
        report.num_sv(),
        report.num_mv(),
        report.num_violations()
    );

    // --- 3. static analysis ----------------------------------------------
    let satisfiable = satisfiability::is_satisfiable(&schema, &constraints)
        .expect("satisfiability analysis runs");
    println!("\nThe constraint set is satisfiable: {satisfiable}");
}
