//! Quickstart: the whole lifecycle through the [`Session`] API — load data,
//! register constraints once, detect, explain, repair, re-verify.
//!
//! Reproduces the running example of the paper (Fig. 1 + Fig. 2): the `cust`
//! instance `D0` and the constraints φ1 / φ2. The session compiles the
//! constraints once and routes detection through its backends (SQL
//! `BATCHDETECT` by default); the low-level per-detector API is demonstrated
//! in `examples/incremental_monitoring.rs`.
//!
//! Run with: `cargo run --example quickstart`

use ecfd::prelude::*;

fn main() {
    // --- the cust relation of Fig. 1 -------------------------------------
    let schema = Schema::builder("cust")
        .attr("AC", DataType::Str)
        .attr("PN", DataType::Str)
        .attr("NM", DataType::Str)
        .attr("STR", DataType::Str)
        .attr("CT", DataType::Str)
        .attr("ZIP", DataType::Str)
        .build();
    let d0 = Relation::with_tuples(
        schema,
        [
            Tuple::from_iter(["718", "1111111", "Mike", "Tree Ave.", "Albany", "12238"]),
            Tuple::from_iter(["518", "2222222", "Joe", "Elm Str.", "Colonie", "12205"]),
            Tuple::from_iter(["518", "2222222", "Jim", "Oak Ave.", "Troy", "12181"]),
            Tuple::from_iter(["100", "1111111", "Rick", "8th Ave.", "NYC", "10001"]),
            Tuple::from_iter(["212", "3333333", "Ben", "5th Ave.", "NYC", "10016"]),
            Tuple::from_iter(["646", "4444444", "Ian", "High St.", "NYC", "10011"]),
        ],
    )
    .expect("D0 matches the cust schema");
    println!("Instance D0:\n{}", d0.render());

    // --- load → register → detect → repair, in one session ----------------
    let mut session = Session::new();
    session.load(d0).expect("load succeeds");
    session
        .register_text(
            "// φ1: outside NYC/LI the city determines the area code; the capital\n\
             // district is bound to 518.\n\
             cust: [CT] -> [AC] | [], { !{NYC, LI} || _ ; {Albany, Troy, Colonie} || {518} }\n\
             // φ2: NYC numbers use one of the five NYC area codes.\n\
             cust: [CT] -> [] | [AC], { {NYC} || {212, 718, 646, 347, 917} }\n",
        )
        .expect("the constraints parse and compile");
    let set = session.constraints("cust").expect("registered");
    for (i, c) in set.ecfds().iter().enumerate() {
        println!("φ{}: {}", i + 1, c);
    }

    let report = session.detect().expect("detection runs");
    println!(
        "\nDetection ({} backend): SV = {}, MV = {}, vio(D0) = {} tuple(s)",
        session.last_backend().expect("just detected"),
        report.num_sv(),
        report.num_mv(),
        report.num_violations()
    );

    // --- explain: which constraint, which pattern tuple -------------------
    let evidence = session.explain().expect("evidence is cached");
    for sv in &evidence.sv {
        println!(
            "  t{} violates pattern tuple {} of φ{}",
            sv.row.as_u64() + 1,
            sv.source.pattern,
            sv.source.constraint + 1
        );
    }

    // --- repair and re-verify ---------------------------------------------
    let outcome = session.repair().expect("repair converges");
    println!(
        "\nRepair: {} cell modification(s) + {} tuple deletion(s) in {} round(s); clean = {}",
        outcome.num_modifications(),
        outcome.num_deletions(),
        outcome.rounds.len(),
        outcome.final_report.is_clean()
    );
    assert!(session.detect().expect("re-detection runs").is_clean());
    println!(
        "Post-repair state: {:?}, {} tuples remain",
        session.stage().expect("one relation"),
        session.data("cust").expect("base projection").len()
    );
}
