//! Incremental monitoring scenario: keep the violation flags of a customer
//! database up to date while batches of insertions and deletions arrive,
//! using INCDETECT — and compare against recomputing from scratch with
//! BATCHDETECT after each batch (the trade-off of Fig. 7(a)).
//!
//! This is the designated *low-level* example: it wires
//! `IncrementalDetector` / `BatchDetector` by hand, which is the layer the
//! [`Session`] API (see `examples/quickstart.rs`) wraps. The final section
//! replays the rounds through a session with the default auto-routing policy,
//! which makes the Fig. 7(a) decision — incremental for small ΔD, batch for
//! large — automatically.
//!
//! Run with: `cargo run --release --example incremental_monitoring [size]`

use ecfd::datagen::constraints::workload_constraints;
use ecfd::datagen::{generate, generate_delta, CustConfig, UpdateConfig};
use ecfd::prelude::*;
use std::time::Instant;

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000);
    let (data, _) = generate(&CustConfig {
        size,
        noise_percent: 5.0,
        ..CustConfig::default()
    });
    let schema = data.schema().clone();
    let constraints = workload_constraints();

    let mut catalog = Catalog::new();
    catalog.create(data.clone()).expect("fresh catalog");
    let start = Instant::now();
    let mut monitor = IncrementalDetector::initialize(&schema, &constraints, &mut catalog)
        .expect("initialisation runs");
    let initial = monitor.report(&catalog).expect("report reads");
    println!(
        "Initial detection over {size} tuples took {:?}: SV = {}, MV = {} ({} violating groups)",
        start.elapsed(),
        initial.num_sv(),
        initial.num_mv(),
        monitor.violating_groups()
    );

    let batch = BatchDetector::new(&schema, &constraints).expect("constraints encode");
    let mut mirror = data; // the un-flagged copy used for the from-scratch comparison

    for round in 1..=3u32 {
        let delta_size = size / 20 * round as usize;
        let delta = generate_delta(
            &mirror,
            &UpdateConfig {
                insertions: delta_size,
                deletions: delta_size,
                noise_percent: 5.0,
                seed: 100 + round as u64,
                ..UpdateConfig::default()
            },
        );
        println!(
            "\nRound {round}: applying ΔD⁺ = {} insertions, ΔD⁻ = {} deletions",
            delta.insertions.len(),
            delta.deletions.len()
        );

        let start = Instant::now();
        let stats = monitor
            .apply(&mut catalog, &delta)
            .expect("incremental apply");
        let inc_time = start.elapsed();
        let report = monitor.report(&catalog).expect("report reads");
        println!(
            "  INCDETECT:   {inc_time:?} (groups changed: {}, rows re-flagged: {}) → SV = {}, MV = {}",
            stats.groups_changed,
            stats.rows_reflagged,
            report.num_sv(),
            report.num_mv()
        );

        // From-scratch comparison on the same updated data.
        delta
            .apply(&mut mirror)
            .expect("delta applies to the mirror");
        let mut scratch = Catalog::new();
        scratch.create(mirror.clone()).expect("fresh catalog");
        let start = Instant::now();
        let scratch_report = batch.detect(&mut scratch).expect("BATCHDETECT runs");
        println!(
            "  BATCHDETECT: {:?} (recompute from scratch) → SV = {}, MV = {}",
            start.elapsed(),
            scratch_report.num_sv(),
            scratch_report.num_mv()
        );
        assert_eq!(
            report.num_sv(),
            scratch_report.num_sv(),
            "detectors must agree"
        );
        assert_eq!(
            report.num_mv(),
            scratch_report.num_mv(),
            "detectors must agree"
        );
    }
    println!("\nIncremental and from-scratch detection agreed after every round.");

    // ── The same monitoring loop, session-managed ──────────────────────────
    // The session compiles the constraints once and routes each ΔD by size:
    // small batches hit the incremental maintainer, large ones trigger a
    // fresh batch pass.
    println!("\nReplaying through Session with the default auto-routing policy:");
    let (data, _) = generate(&CustConfig {
        size,
        noise_percent: 5.0,
        ..CustConfig::default()
    });
    let mut session = Session::new();
    session.load(data.clone()).expect("load succeeds");
    session.register(&constraints).expect("constraints compile");
    session.detect().expect("initial detection runs");
    let mut mirror = data;
    for (round, fraction) in [(1u64, 40usize), (2, 2)] {
        let delta_size = size / fraction;
        let delta = generate_delta(
            &mirror,
            &UpdateConfig {
                insertions: delta_size,
                deletions: delta_size,
                noise_percent: 5.0,
                seed: 200 + round,
                ..UpdateConfig::default()
            },
        );
        let report = session.apply(&delta).expect("session apply runs");
        delta.apply(&mut mirror).expect("mirror stays in sync");
        println!(
            "  round {round}: |ΔD| = {} → routed to the {} backend (SV = {}, MV = {})",
            delta.len(),
            session.last_backend().expect("just applied"),
            report.num_sv(),
            report.num_mv()
        );
    }
}
