//! Data-cleaning scenario, end to end, through the [`Session`] API: detect
//! violations of the paper's 10-constraint workload, *explain* them (which
//! eCFD, which pattern tuple, which enforcement group), *repair* the data
//! (value modification where a consequent set names a fix, cardinality
//! deletion for the rest) and *re-verify* that the repaired instance is clean
//! — the constraints are compiled once at registration and shared by every
//! backend the session routes through.
//!
//! Run with: `cargo run --release --example data_cleaning [size] [noise%]`

use ecfd::datagen::constraints::workload_constraints;
use ecfd::datagen::{generate, CustConfig};
use ecfd::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let mut args = std::env::args().skip(1);
    let size: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let noise: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5.0);

    println!("Generating a cust instance: |D| = {size}, noise = {noise}%");
    let (data, noisy) = generate(&CustConfig {
        size,
        noise_percent: noise,
        ..CustConfig::default()
    });
    println!("  {} tuples were corrupted by the noise injector", noisy);

    // ── One session for the whole lifecycle ────────────────────────────────
    let mut session = Session::new().with_cost_model(EditDistanceCost::default());
    session.load(data).expect("load succeeds");
    session
        .register(&workload_constraints())
        .expect("constraints compile");
    let set = session.constraints("cust").expect("registered");
    println!(
        "\nConstraint workload: {} eCFDs registered, compiled to {} ({} pattern tuples):",
        set.source().len(),
        set.len(),
        set.num_patterns()
    );
    let headlines: Vec<String> = set.ecfds().iter().map(|c| c.to_string()).collect();
    for (i, text) in headlines.iter().enumerate() {
        let head: String = text.chars().take(90).collect();
        println!(
            "  φ{:2}: {head}{}",
            i + 1,
            if text.len() > 90 { "…" } else { "" }
        );
    }

    // ── Detect and explain ─────────────────────────────────────────────────
    let before = session.detect().expect("detection runs");
    let evidence = session.explain().expect("evidence is cached");
    println!(
        "\nDetected {} violating tuples ({} SV, {} MV) of {} via the {} backend:",
        before.num_violations(),
        before.num_sv(),
        before.num_mv(),
        before.total_rows,
        session.last_backend().expect("just detected")
    );
    let mut sv_per: BTreeMap<usize, usize> = BTreeMap::new();
    for e in &evidence.sv {
        *sv_per.entry(e.source.constraint).or_default() += 1;
    }
    let mut groups_per: BTreeMap<usize, usize> = BTreeMap::new();
    for g in &evidence.mv_groups {
        *groups_per.entry(g.source.constraint).or_default() += 1;
    }
    println!("\nEvidence by constraint:");
    for i in 0..headlines.len() {
        let sv = sv_per.get(&i).copied().unwrap_or(0);
        let groups = groups_per.get(&i).copied().unwrap_or(0);
        if sv + groups > 0 {
            println!(
                "  φ{:2}: {sv:5} single-tuple records, {groups:4} violating groups",
                i + 1
            );
        }
    }
    if let Some(sample) = evidence.sv.first() {
        println!(
            "\nSample explanation: row {} violates pattern tuple {} of φ{} = {}",
            sample.row,
            sample.source.pattern,
            sample.source.constraint + 1,
            headlines[sample.source.constraint]
        );
    }
    let graph = session.conflict_graph().expect("conflict graph builds");
    println!(
        "Conflict graph: {} nodes, {} conflict pairs in {} groups (trivial bound: delete {}).",
        graph.num_nodes(),
        graph.num_conflicts(),
        graph.groups().len(),
        graph.trivial_bound()
    );

    // ── Repair and re-verify ───────────────────────────────────────────────
    let outcome = session
        .repair_with(RepairOptions::default())
        .expect("repair converges");
    println!(
        "\nRepair: {} cell modifications + {} tuple deletions in {} round(s), total cost {:.1}.",
        outcome.num_modifications(),
        outcome.num_deletions(),
        outcome.rounds.len(),
        outcome.total_cost()
    );
    for round in &outcome.rounds {
        println!(
            "  round {}: {} violating before → {} modifications, {} deletions",
            round.round,
            round.before.num_violations(),
            round.repair.num_modifications(),
            round.repair.num_deletions()
        );
    }
    let mods_per: BTreeMap<usize, usize> = outcome
        .rounds
        .iter()
        .flat_map(|r| &r.repair.modifications)
        .fold(BTreeMap::new(), |mut acc, m| {
            *acc.entry(m.source.constraint).or_default() += 1;
            acc
        });
    if !mods_per.is_empty() {
        println!("\nValue repairs by constraint:");
        for (c, n) in &mods_per {
            println!(
                "  φ{:2}: {n:5} cells rewritten from the pattern consequent",
                c + 1
            );
        }
    }

    // The invariant `repair → re-detect → zero violations` is checked by the
    // session's verified-repair loop (incrementally *and* from scratch);
    // cross-check with an explicit semantic re-detection anyway.
    assert!(outcome.final_report.is_clean());
    let recheck = session
        .detect_with(BackendKind::Semantic)
        .expect("re-detection runs");
    assert!(recheck.is_clean());
    println!(
        "\nPost-repair verification: 0 violations across {} remaining tuples ✓",
        session.data("cust").expect("base projection").len()
    );
}
