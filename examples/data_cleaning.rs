//! Data-cleaning scenario, end to end: detect violations of the paper's
//! 10-constraint workload, *explain* them (which eCFD, which pattern tuple,
//! which enforcement group), *repair* the data with `ecfd_repair` (value
//! modification where a consequent set names a fix, cardinality deletion for
//! the rest) and *re-verify* that the repaired instance is clean.
//!
//! Run with: `cargo run --release --example data_cleaning [size] [noise%]`

use ecfd::datagen::constraints::workload_constraints;
use ecfd::datagen::{generate, CustConfig};
use ecfd::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let mut args = std::env::args().skip(1);
    let size: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let noise: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5.0);

    println!("Generating a cust instance: |D| = {size}, noise = {noise}%");
    let (data, noisy) = generate(&CustConfig {
        size,
        noise_percent: noise,
        ..CustConfig::default()
    });
    println!("  {} tuples were corrupted by the noise injector", noisy);

    let constraints = workload_constraints();
    let schema = data.schema().clone();
    println!("\nConstraint workload ({} eCFDs):", constraints.len());
    for (i, c) in constraints.iter().enumerate() {
        let text = c.to_string();
        let head: String = text.chars().take(90).collect();
        println!(
            "  φ{:2}: {head}{}",
            i + 1,
            if text.len() > 90 { "…" } else { "" }
        );
    }

    // ── Detect and explain ─────────────────────────────────────────────────
    let engine = RepairEngine::new(&schema, &constraints)
        .expect("constraints apply")
        .with_cost_model(EditDistanceCost::default());
    let evidence = engine.explain(&data).expect("detection runs");
    let before = evidence.detection_report();
    println!(
        "\nDetected {} violating tuples ({} SV, {} MV) of {}:",
        before.num_violations(),
        before.num_sv(),
        before.num_mv(),
        data.len()
    );
    let mut sv_per: BTreeMap<usize, usize> = BTreeMap::new();
    for e in &evidence.sv {
        *sv_per.entry(e.source.constraint).or_default() += 1;
    }
    let mut groups_per: BTreeMap<usize, usize> = BTreeMap::new();
    for g in &evidence.mv_groups {
        *groups_per.entry(g.source.constraint).or_default() += 1;
    }
    println!("\nEvidence by constraint:");
    for i in 0..constraints.len() {
        let sv = sv_per.get(&i).copied().unwrap_or(0);
        let groups = groups_per.get(&i).copied().unwrap_or(0);
        if sv + groups > 0 {
            println!(
                "  φ{:2}: {sv:5} single-tuple records, {groups:4} violating groups",
                i + 1
            );
        }
    }
    if let Some(sample) = evidence.sv.first() {
        let phi = &constraints[sample.source.constraint];
        println!(
            "\nSample explanation: row {} violates pattern tuple {} of φ{} = {}",
            sample.row,
            sample.source.pattern,
            sample.source.constraint + 1,
            phi
        );
    }
    let graph = engine
        .conflict_graph(&data, &evidence)
        .expect("conflict graph builds");
    println!(
        "Conflict graph: {} nodes, {} conflict pairs in {} groups (trivial bound: delete {}).",
        graph.num_nodes(),
        graph.num_conflicts(),
        graph.groups().len(),
        graph.trivial_bound()
    );

    // ── Repair and re-verify ───────────────────────────────────────────────
    let mut catalog = Catalog::new();
    catalog.create(data).expect("fresh catalog");
    let outcome = repair_verified(&engine, &mut catalog).expect("repair converges");
    println!(
        "\nRepair: {} cell modifications + {} tuple deletions in {} round(s), total cost {:.1}.",
        outcome.num_modifications(),
        outcome.num_deletions(),
        outcome.rounds.len(),
        outcome.total_cost()
    );
    for round in &outcome.rounds {
        println!(
            "  round {}: {} violating before → {} modifications, {} deletions",
            round.round,
            round.before.num_violations(),
            round.repair.num_modifications(),
            round.repair.num_deletions()
        );
    }
    let mods_per: BTreeMap<usize, usize> = outcome
        .rounds
        .iter()
        .flat_map(|r| &r.repair.modifications)
        .fold(BTreeMap::new(), |mut acc, m| {
            *acc.entry(m.source.constraint).or_default() += 1;
            acc
        });
    if !mods_per.is_empty() {
        println!("\nValue repairs by constraint:");
        for (c, n) in &mods_per {
            println!(
                "  φ{:2}: {n:5} cells rewritten from the pattern consequent",
                c + 1
            );
        }
    }

    // The invariant `repair → re-detect → zero violations` is checked by
    // repair_verified itself (incrementally *and* from scratch); show it.
    assert!(outcome.final_report.is_clean());
    let base = ecfd::repair::base_relation(catalog.get("cust").expect("table"), &schema)
        .expect("base projection");
    let recheck = SemanticDetector::new(&schema, &constraints)
        .expect("constraints apply")
        .detect(&base)
        .expect("detection runs");
    assert!(recheck.is_clean());
    println!(
        "\nPost-repair verification: 0 violations across {} remaining tuples ✓",
        base.len()
    );
}
