//! Data-cleaning scenario: run the full 10-constraint workload of the paper's
//! experiments against a generated customer database and summarise the dirty
//! tuples per constraint.
//!
//! Run with: `cargo run --release --example data_cleaning [size] [noise%]`

use ecfd::datagen::constraints::workload_constraints;
use ecfd::datagen::{generate, CustConfig};
use ecfd::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let size: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let noise: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5.0);

    println!("Generating a cust instance: |D| = {size}, noise = {noise}%");
    let (data, noisy) = generate(&CustConfig {
        size,
        noise_percent: noise,
        ..CustConfig::default()
    });
    println!("  {} tuples were corrupted by the noise injector", noisy);

    let constraints = workload_constraints();
    println!("\nConstraint workload ({} eCFDs):", constraints.len());
    for (i, c) in constraints.iter().enumerate() {
        let text = c.to_string();
        let head: String = text.chars().take(90).collect();
        println!(
            "  φ{:2}: {head}{}",
            i + 1,
            if text.len() > 90 { "…" } else { "" }
        );
    }

    // Per-constraint diagnosis with the reference semantics.
    let result = check_all(&data, &constraints).expect("constraints apply");
    println!("\nViolations by constraint:");
    for (constraint, violations) in result.violations().by_constraint() {
        let sv = violations
            .iter()
            .filter(|v| v.kind == ViolationKind::SingleTuple)
            .count();
        let mv = violations.len() - sv;
        println!(
            "  φ{:2}: {sv:5} single-tuple, {mv:5} multi-tuple violation records",
            constraint + 1
        );
    }
    println!(
        "\nTotal dirty tuples: {} of {} ({:.2}%)",
        result.violations().num_violating_rows(),
        data.len(),
        100.0 * result.violations().num_violating_rows() as f64 / data.len() as f64
    );

    // The SQL path produces the same answer — this is what would run on an
    // RDBMS in production.
    let schema = data.schema().clone();
    let mut catalog = Catalog::new();
    catalog.create(data).expect("fresh catalog");
    let detector = BatchDetector::new(&schema, &constraints).expect("constraints encode");
    let report = detector.detect(&mut catalog).expect("BATCHDETECT runs");
    println!(
        "\nBATCHDETECT (SQL path): SV = {}, MV = {}, vio(D) = {}",
        report.num_sv(),
        report.num_mv(),
        report.num_violations()
    );
    assert_eq!(report.num_sv(), result.violations().num_sv());
    assert_eq!(report.num_mv(), result.violations().num_mv());
    println!("SQL and reference results agree.");
}
