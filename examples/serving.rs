//! Serving quickstart: one server, one delta-streaming client, two readers.
//!
//! Starts the snapshot-isolated serving layer on an ephemeral port over the
//! paper's Fig. 1 `cust` instance with φ1/φ2 registered, then:
//!
//! 1. a *writer client* streams insert/delete deltas through `APPLY` and
//!    barriers on `SYNC`;
//! 2. two *reader clients* query `DETECT` / `CHECK` / `EXPLAIN` while the
//!    deltas land, verifying that every answer is internally consistent for
//!    its epoch.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use ecfd::prelude::*;
use ecfd::serve::protocol::TupleOp;
use ecfd::serve::{Client, ServeConfig, Server};

fn cust_session() -> Session {
    let schema = Schema::builder("cust")
        .attr("AC", DataType::Str)
        .attr("PN", DataType::Str)
        .attr("NM", DataType::Str)
        .attr("STR", DataType::Str)
        .attr("CT", DataType::Str)
        .attr("ZIP", DataType::Str)
        .build();
    let data = Relation::with_tuples(
        schema,
        [
            Tuple::from_iter(["718", "1111111", "Mike", "Tree Ave.", "Albany", "12238"]),
            Tuple::from_iter(["518", "2222222", "Joe", "Elm Str.", "Colonie", "12205"]),
            Tuple::from_iter(["518", "2222222", "Jim", "Oak Ave.", "Troy", "12181"]),
            Tuple::from_iter(["100", "1111111", "Rick", "8th Ave.", "NYC", "10001"]),
            Tuple::from_iter(["212", "3333333", "Ben", "5th Ave.", "NYC", "10016"]),
            Tuple::from_iter(["646", "4444444", "Ian", "High St.", "NYC", "10011"]),
        ],
    )
    .expect("demo rows fit the schema");
    let mut session = Session::new();
    session.load(data).expect("load");
    session
        .register_text(
            "cust: [CT] -> [AC] | [], { !{NYC, LI} || _ ; {Albany, Troy, Colonie} || {518} }\n\
             cust: [CT] -> []   | [AC], { {NYC} || {212, 718, 646, 347, 917} }",
        )
        .expect("φ1/φ2 compile");
    session
}

fn main() {
    // ── start the server on an ephemeral port ────────────────────────────
    let server = Server::bind(cust_session(), ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    println!("server listening on {addr}");

    let server_thread = std::thread::spawn(move || server.run().expect("server runs clean"));

    // ── reader clients watch while a writer client streams deltas ────────
    std::thread::scope(|scope| {
        // Two readers: every CHECK re-detects from scratch on the snapshot
        // it observed and compares with the published report.
        for reader_id in 0..2 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("reader connects");
                for _ in 0..20 {
                    let (epoch, consistent) = client.check().expect("CHECK");
                    assert!(consistent, "epoch {epoch} served an inconsistent report");
                }
                let (epoch, _) = client.check().expect("CHECK");
                println!(
                    "reader {reader_id}: 21 consistent detect round-trips (last epoch {epoch})"
                );
                client.quit().expect("QUIT");
            });
        }

        // The writer client: a second Albany row with a conflicting area
        // code (creates an MV pair), then deletes it again.
        scope.spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            let zoe = ["519", "7", "Zoe", "Pine St.", "Albany", "12239"];
            client
                .apply(vec![TupleOp::insert(zoe)])
                .expect("APPLY insert");
            let epoch = client.sync().expect("SYNC");
            let report = client.detect(false).expect("DETECT");
            println!("writer: after insert (epoch {epoch}) → {report:?}");

            client
                .apply(vec![TupleOp::delete(zoe)])
                .expect("APPLY delete");
            let epoch = client.sync().expect("SYNC");
            let report = client.detect(false).expect("DETECT");
            println!("writer: after delete (epoch {epoch}) → {report:?}");
            client.quit().expect("QUIT");
        });
    });

    // ── final picture: evidence + repair plan over the served snapshot ───
    let mut client = Client::connect(addr).expect("final client");
    println!("epoch:    {:?}", client.epoch().expect("EPOCH"));
    println!("evidence: {:?}", client.explain().expect("EXPLAIN"));
    println!("plan:     {:?}", client.repair_plan().expect("REPAIR-PLAN"));
    client.quit().expect("QUIT");

    handle.shutdown();
    let session = server_thread.join().expect("server thread");
    println!(
        "server returned the session at version {} — shut down cleanly",
        session.version()
    );
}
