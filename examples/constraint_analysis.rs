//! Static constraint analysis: satisfiability, implication / redundancy
//! removal, and the approximate maximum-satisfiable-subset analysis of
//! Section IV — the checks a data steward runs *before* using a constraint
//! set for cleaning ("it is necessary to determine whether or not the given
//! eCFDs are not dirty themselves").
//!
//! Run with: `cargo run --example constraint_analysis`

use ecfd::core::{implication, maxss, satisfiability};
use ecfd::prelude::*;

fn main() {
    let schema = Schema::builder("cust")
        .attr("AC", DataType::Str)
        .attr("CT", DataType::Str)
        .attr("ZIP", DataType::Str)
        .build();

    // A constraint set that a user might plausibly write: the paper's φ1 and
    // φ2, a redundant weaker variant, and two conflicting area-code rules.
    let texts = [
        "cust: [CT] -> [AC] | [], { !{NYC, LI} || _ ; {Albany, Troy, Colonie} || {518} }",
        "cust: [CT] -> [] | [AC], { {NYC} || {212, 718, 646, 347, 917} }",
        // Redundant: implied by the first constraint.
        "cust: [CT] -> [AC] | [], { {Albany} || {518} }",
        // These two conflict with each other: every tuple's AC is forced into
        // two disjoint sets.
        "cust: [CT] -> [] | [AC], { _ || {212} }",
        "cust: [CT] -> [] | [AC], { _ || {518} }",
    ];
    let constraints: Vec<ECfd> = texts
        .iter()
        .map(|t| parse_ecfd(t).expect("constraint parses"))
        .collect();
    for (i, c) in constraints.iter().enumerate() {
        println!("φ{}: {}", i + 1, c);
    }

    // --- exact satisfiability --------------------------------------------
    let satisfiable = satisfiability::is_satisfiable(&schema, &constraints).expect("analysis runs");
    println!("\nExact satisfiability of the whole set: {satisfiable}");

    // --- approximate MAXSS (Section IV) ------------------------------------
    let outcome = maxss::approximate_max_satisfiable(
        &schema,
        &constraints,
        MaxGSatSolver::LocalSearch {
            restarts: 8,
            max_flips: 300,
        },
        0.1,
        42,
    )
    .expect("MAXSS analysis runs");
    println!(
        "Approximate MAXSS: {} of {} constraints are jointly satisfiable → verdict {:?}",
        outcome.satisfiable_subset.len(),
        constraints.len(),
        outcome.verdict
    );
    println!(
        "  a maximal satisfiable subset: {:?} (1-based)",
        outcome
            .satisfiable_subset
            .iter()
            .map(|i| i + 1)
            .collect::<Vec<_>>()
    );

    // --- implication & redundancy removal ---------------------------------
    // The compilation pipeline behind `Session::register`: validate →
    // implication-based minimization → normalize → dedupe. Compiling the
    // satisfiable subset with minimization drops the redundant constraint.
    let keep: Vec<ECfd> = outcome
        .satisfiable_subset
        .iter()
        .map(|&i| constraints[i].clone())
        .collect();
    let compiled = ConstraintSet::compile_with(&schema, &keep, CompileOptions::minimizing())
        .expect("implication analysis runs");
    println!(
        "\nCompiled with minimization: {} of {} registered constraints remain \
         ({} pattern tuples):",
        compiled.len(),
        compiled.source().len(),
        compiled.num_patterns()
    );
    for c in compiled.ecfds() {
        println!("  {}", c);
    }

    // Spot-check one implication the paper-style reasoning predicts: the
    // Albany-only binding follows from φ1.
    let weaker = parse_ecfd("cust: [CT] -> [AC] | [], { {Albany} || {518} }").unwrap();
    let implied = implication::implies(&schema, &constraints[..1], &weaker).expect("analysis runs");
    println!("\nφ1 ⊨ (Albany → 518)? {implied}");
}
