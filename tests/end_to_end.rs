//! End-to-end integration tests spanning the workspace crates: generated
//! workloads → constraint parsing → SQL detection → incremental maintenance
//! → static analyses.

use ecfd::datagen::constraints::{workload_constraints, workload_with_scaled_constraint};
use ecfd::datagen::{generate, generate_delta, CustConfig, UpdateConfig};
use ecfd::prelude::*;

fn workload(size: usize, noise: f64, seed: u64) -> (Schema, Relation, Vec<ECfd>) {
    let (data, _) = generate(&CustConfig {
        size,
        noise_percent: noise,
        seed,
        ..CustConfig::default()
    });
    (data.schema().clone(), data, workload_constraints())
}

#[test]
fn sql_batch_detection_agrees_with_reference_semantics_on_generated_data() {
    for (size, noise, seed) in [(300usize, 0.0f64, 1u64), (300, 5.0, 2), (500, 9.0, 3)] {
        let (schema, data, constraints) = workload(size, noise, seed);
        let reference = check_all(&data, &constraints).unwrap();
        let expected_sv = reference.violations().num_sv();
        let expected_mv = reference.violations().num_mv();

        let mut catalog = Catalog::new();
        catalog.create(data).unwrap();
        let report = BatchDetector::new(&schema, &constraints)
            .unwrap()
            .detect(&mut catalog)
            .unwrap();
        assert_eq!(report.num_sv(), expected_sv, "size {size} noise {noise}");
        assert_eq!(report.num_mv(), expected_mv, "size {size} noise {noise}");
        if noise == 0.0 {
            assert!(report.is_clean(), "clean data must produce no violations");
        } else {
            assert!(!report.is_clean(), "noisy data must produce violations");
        }
    }
}

#[test]
fn incremental_detection_tracks_batch_detection_across_update_rounds() {
    let (schema, data, constraints) = workload(400, 5.0, 11);
    let mut catalog = Catalog::new();
    catalog.create(data.clone()).unwrap();
    let mut inc = IncrementalDetector::initialize(&schema, &constraints, &mut catalog).unwrap();
    let mut mirror = data;

    for round in 0..3u64 {
        let delta = generate_delta(
            &mirror,
            &UpdateConfig {
                insertions: 60,
                deletions: 40,
                noise_percent: 10.0,
                seed: 50 + round,
                ..UpdateConfig::default()
            },
        );
        inc.apply(&mut catalog, &delta).unwrap();
        delta.apply(&mut mirror).unwrap();

        let incremental = inc.report(&catalog).unwrap();
        let mut scratch = Catalog::new();
        scratch.create(mirror.clone()).unwrap();
        let from_scratch = BatchDetector::new(&schema, &constraints)
            .unwrap()
            .detect(&mut scratch)
            .unwrap();
        assert_eq!(incremental.num_sv(), from_scratch.num_sv(), "round {round}");
        assert_eq!(incremental.num_mv(), from_scratch.num_mv(), "round {round}");
        assert_eq!(
            catalog.get("cust").unwrap().len(),
            mirror.len(),
            "round {round}: table sizes diverged"
        );
    }
}

#[test]
fn scaled_tableaux_are_detected_consistently_by_both_paths() {
    let (data, _) = generate(&CustConfig {
        size: 250,
        noise_percent: 6.0,
        seed: 21,
        ..CustConfig::default()
    });
    let schema = data.schema().clone();
    let constraints = workload_with_scaled_constraint(40, 5);

    let semantic = SemanticDetector::new(&schema, &constraints)
        .unwrap()
        .detect(&data)
        .unwrap();
    let mut catalog = Catalog::new();
    catalog.create(data).unwrap();
    let sql = BatchDetector::new(&schema, &constraints)
        .unwrap()
        .detect(&mut catalog)
        .unwrap();
    assert_eq!(sql.num_sv(), semantic.num_sv());
    assert_eq!(sql.num_mv(), semantic.num_mv());
}

#[test]
fn constraint_round_trip_through_text_preserves_detection_results() {
    let (schema, data, constraints) = workload(200, 5.0, 31);
    // Serialise every constraint to the textual syntax and parse it back.
    let reparsed: Vec<ECfd> = constraints
        .iter()
        .map(|c| parse_ecfd(&c.to_string()).unwrap())
        .collect();
    assert_eq!(constraints, reparsed);

    let a = SemanticDetector::new(&schema, &constraints)
        .unwrap()
        .detect(&data)
        .unwrap();
    let b = SemanticDetector::new(&schema, &reparsed)
        .unwrap()
        .detect(&data)
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn workload_constraints_are_satisfiable_and_irredundant_enough() {
    let (schema, _, constraints) = workload(50, 0.0, 41);
    assert!(satisfiability::is_satisfiable(&schema, &constraints).unwrap());

    // The MAXSS approximation (being an approximation) may fall a constraint
    // short of the optimum on this large-active-domain workload, but it must
    // never conclude "unsatisfiable" for a satisfiable set.
    let outcome = maxss::approximate_max_satisfiable(
        &schema,
        &constraints,
        MaxGSatSolver::LocalSearch {
            restarts: 8,
            max_flips: 400,
        },
        0.1,
        3,
    )
    .unwrap();
    assert!(outcome.satisfiable_subset.len() + 1 >= constraints.len());
    assert_ne!(
        outcome.verdict,
        ecfd::core::maxss::SatisfiabilityVerdict::Unsatisfiable
    );
}

#[test]
fn sql_engine_round_trips_detection_flags() {
    // After BATCHDETECT, the flags are ordinary columns and can be queried
    // through the SQL engine like any other data.
    let (schema, data, constraints) = workload(200, 5.0, 61);
    let mut catalog = Catalog::new();
    catalog.create(data).unwrap();
    let report = BatchDetector::new(&schema, &constraints)
        .unwrap()
        .detect(&mut catalog)
        .unwrap();

    let engine = Engine::new();
    let sv_count = engine
        .query(&catalog, "SELECT COUNT(*) FROM cust WHERE SV = 1")
        .unwrap();
    assert_eq!(
        sv_count.scalar().and_then(Value::as_int),
        Some(report.num_sv() as i64)
    );
    let mv_count = engine
        .query(&catalog, "SELECT COUNT(*) FROM cust WHERE MV = 1")
        .unwrap();
    assert_eq!(
        mv_count.scalar().and_then(Value::as_int),
        Some(report.num_mv() as i64)
    );
}

#[test]
fn yp_attribute_violations_are_flagged_by_every_path_without_joining_the_fd() {
    // The paper's extension beyond classic CFDs: `Yp` attributes carry
    // right-hand-side *pattern* constraints without participating in the
    // embedded FD. Here `φ = cust: [CT] → [AC] | [ZIP]` says NYC tuples must
    // have zip codes in {10001, 10002} (a pure `Yp` constraint, the FD rhs
    // cell is a wildcard), while CT still functionally determines AC.
    let schema = Schema::builder("cust")
        .attr("CT", DataType::Str)
        .attr("AC", DataType::Str)
        .attr("ZIP", DataType::Str)
        .build();
    let phi = parse_ecfd("cust: [CT] -> [AC] | [ZIP], { {NYC} || _, {10001, 10002} }").unwrap();
    let constraints = vec![phi];

    let mut data = Relation::new(schema.clone());
    let clean_a = data
        .insert(Tuple::from_iter(["NYC", "212", "10001"]))
        .unwrap();
    // Same AC, different ZIP: ZIP is in Yp, not Y, so this must NOT be a
    // multi-tuple (FD) violation — only the pattern applies to it.
    let clean_b = data
        .insert(Tuple::from_iter(["NYC", "212", "10002"]))
        .unwrap();
    // Matches the lhs pattern but the ZIP falls outside the Yp set: the
    // Yp-attribute single-tuple violation under test.
    let yp_violation = data
        .insert(Tuple::from_iter(["NYC", "212", "99999"]))
        .unwrap();
    // Outside I(tp) entirely; its ZIP would violate the pattern if Albany
    // matched, so this guards against lhs matching being ignored.
    let unmatched = data
        .insert(Tuple::from_iter(["Albany", "518", "99999"]))
        .unwrap();

    let expected_sv: std::collections::BTreeSet<RowId> = [yp_violation].into_iter().collect();

    // Reference semantics.
    let reference = check_all(&data, &constraints).unwrap();
    assert_eq!(reference.violations().sv_rows(), &expected_sv);
    assert!(reference.violations().mv_rows().is_empty());

    // Native semantic detector.
    let semantic = SemanticDetector::new(&schema, &constraints)
        .unwrap()
        .detect(&data)
        .unwrap();
    assert_eq!(semantic.sv_rows, expected_sv);
    assert!(semantic.mv_rows.is_empty());

    // SQL BATCHDETECT.
    let mut catalog = Catalog::new();
    catalog.create(data.clone()).unwrap();
    let sql = BatchDetector::new(&schema, &constraints)
        .unwrap()
        .detect(&mut catalog)
        .unwrap();
    assert_eq!(sql.sv_rows, expected_sv);
    assert!(sql.mv_rows.is_empty());

    // Incremental maintenance: inserting a fresh Yp violation and a genuine
    // FD violation updates the flags to distinguish the two kinds.
    let mut inc = IncrementalDetector::initialize(&schema, &constraints, &mut catalog).unwrap();
    let delta = Delta {
        insertions: vec![
            Tuple::from_iter(["NYC", "212", "10003"]), // new Yp violation
            Tuple::from_iter(["NYC", "646", "10001"]), // AC conflict → MV
        ],
        deletions: vec![],
    };
    inc.apply(&mut catalog, &delta).unwrap();
    let report = inc.report(&catalog).unwrap();
    // SV: the original bad zip plus the freshly inserted one.
    assert_eq!(report.num_sv(), 2);
    // MV: every NYC tuple now sits in a group where CT no longer determines
    // AC (the two clean tuples, the two bad-zip tuples, and the 646 tuple);
    // the Albany tuple stays untouched.
    assert_eq!(report.num_mv(), 5);
    assert!(!report.violating_rows().contains(&unmatched));
    assert!(report.mv_rows.contains(&clean_a) && report.mv_rows.contains(&clean_b));

    // The incremental picture must match recomputation from scratch.
    let mut updated = data;
    delta.apply(&mut updated).unwrap();
    let scratch = SemanticDetector::new(&schema, &constraints)
        .unwrap()
        .detect(&updated)
        .unwrap();
    assert_eq!(report.num_sv(), scratch.num_sv());
    assert_eq!(report.num_mv(), scratch.num_mv());
}

#[test]
fn evidence_reports_agree_across_all_three_detectors() {
    // The differential contract one level above the flags: semantic, SQL
    // batch and incremental detection must attribute every violation to the
    // same (row, constraint, pattern) pairs and the same groups.
    for (size, noise, seed) in [(200usize, 5.0f64, 2u64), (300, 9.0, 3)] {
        let (schema, data, constraints) = workload(size, noise, seed);
        let (_, semantic) = SemanticDetector::new(&schema, &constraints)
            .unwrap()
            .detect_with_evidence(&data)
            .unwrap();
        assert!(
            !semantic.is_clean(),
            "noisy fixtures must produce violations"
        );

        let mut batch_catalog = Catalog::new();
        batch_catalog.create(data.clone()).unwrap();
        let (batch_report, batch) = BatchDetector::new(&schema, &constraints)
            .unwrap()
            .detect_with_evidence(&mut batch_catalog)
            .unwrap();
        assert_eq!(batch.detection_report(), batch_report);

        let mut inc_catalog = Catalog::new();
        inc_catalog.create(data.clone()).unwrap();
        let mut inc =
            IncrementalDetector::initialize(&schema, &constraints, &mut inc_catalog).unwrap();
        let incremental = inc.evidence(&inc_catalog).unwrap();

        assert_eq!(semantic.sv_pairs(), batch.sv_pairs(), "size {size}");
        assert_eq!(semantic.mv_pairs(), batch.mv_pairs(), "size {size}");
        assert_eq!(semantic.sv_pairs(), incremental.sv_pairs(), "size {size}");
        assert_eq!(semantic.mv_pairs(), incremental.mv_pairs(), "size {size}");
        assert_eq!(semantic.normalized(), batch.normalized(), "size {size}");

        // Insert-only updates keep row ids aligned between the incremental
        // table and a from-scratch pass, so the evidence must stay in sync.
        let delta = Delta::insert_only(vec![
            Tuple::from_iter([
                "518", "0", "Eve", "Ash St.", "Albany", "12208", "b1", "book",
            ]),
            Tuple::from_iter(["999", "1", "Mal", "Elm St.", "Albany", "12208", "b1", "vhs"]),
        ]);
        inc.apply(&mut inc_catalog, &delta).unwrap();
        let mut mirror = data;
        delta.apply(&mut mirror).unwrap();
        let (_, scratch) = SemanticDetector::new(&schema, &constraints)
            .unwrap()
            .detect_with_evidence(&mirror)
            .unwrap();
        let updated = inc.evidence(&inc_catalog).unwrap();
        assert_eq!(scratch.sv_pairs(), updated.sv_pairs(), "after updates");
        assert_eq!(scratch.mv_pairs(), updated.mv_pairs(), "after updates");
    }
}

#[test]
fn repair_subsystem_cleans_generated_workloads_end_to_end() {
    let (schema, data, constraints) = workload(300, 5.0, 13);
    let engine = RepairEngine::new(&schema, &constraints)
        .unwrap()
        .with_cost_model(EditDistanceCost::default());

    // Explain: every flagged row carries at least one evidence record.
    let evidence = engine.explain(&data).unwrap();
    let report = evidence.detection_report();
    assert!(!report.is_clean());
    for &row in report.violating_rows().iter() {
        assert!(
            !evidence.for_row(row).is_empty(),
            "flagged row {row} lacks evidence"
        );
    }

    // Repair + verify: zero violations afterwards, within the trivial bound.
    let mut catalog = Catalog::new();
    catalog.create(data).unwrap();
    let outcome = repair_verified(&engine, &mut catalog).unwrap();
    assert!(outcome.final_report.is_clean());
    assert!(outcome.num_deletions() <= report.num_violations());
    assert!(
        outcome.num_modifications() > 0,
        "the noisy workload contains value-repairable SV rows"
    );
}

#[test]
fn csv_round_trip_preserves_detection_results() {
    let (schema, data, constraints) = workload(150, 5.0, 71);
    let text = ecfd::relation::csv::to_csv(&data);
    let reloaded = ecfd::relation::csv::from_csv(schema.clone(), &text).unwrap();
    assert_eq!(reloaded, data);

    let a = SemanticDetector::new(&schema, &constraints)
        .unwrap()
        .detect(&data)
        .unwrap();
    let b = SemanticDetector::new(&schema, &constraints)
        .unwrap()
        .detect(&reloaded)
        .unwrap();
    assert_eq!(a.num_sv(), b.num_sv());
    assert_eq!(a.num_mv(), b.num_mv());
}
