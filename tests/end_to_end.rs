//! End-to-end integration tests spanning the workspace crates: generated
//! workloads → constraint parsing → SQL detection → incremental maintenance
//! → static analyses.

use ecfd::datagen::constraints::{workload_constraints, workload_with_scaled_constraint};
use ecfd::datagen::{generate, generate_delta, CustConfig, UpdateConfig};
use ecfd::prelude::*;

fn workload(size: usize, noise: f64, seed: u64) -> (Schema, Relation, Vec<ECfd>) {
    let (data, _) = generate(&CustConfig {
        size,
        noise_percent: noise,
        seed,
        ..CustConfig::default()
    });
    (data.schema().clone(), data, workload_constraints())
}

#[test]
fn sql_batch_detection_agrees_with_reference_semantics_on_generated_data() {
    for (size, noise, seed) in [(300usize, 0.0f64, 1u64), (300, 5.0, 2), (500, 9.0, 3)] {
        let (schema, data, constraints) = workload(size, noise, seed);
        let reference = check_all(&data, &constraints).unwrap();
        let expected_sv = reference.violations().num_sv();
        let expected_mv = reference.violations().num_mv();

        let mut catalog = Catalog::new();
        catalog.create(data).unwrap();
        let report = BatchDetector::new(&schema, &constraints)
            .unwrap()
            .detect(&mut catalog)
            .unwrap();
        assert_eq!(report.num_sv(), expected_sv, "size {size} noise {noise}");
        assert_eq!(report.num_mv(), expected_mv, "size {size} noise {noise}");
        if noise == 0.0 {
            assert!(report.is_clean(), "clean data must produce no violations");
        } else {
            assert!(!report.is_clean(), "noisy data must produce violations");
        }
    }
}

#[test]
fn incremental_detection_tracks_batch_detection_across_update_rounds() {
    let (schema, data, constraints) = workload(400, 5.0, 11);
    let mut catalog = Catalog::new();
    catalog.create(data.clone()).unwrap();
    let mut inc = IncrementalDetector::initialize(&schema, &constraints, &mut catalog).unwrap();
    let mut mirror = data;

    for round in 0..3u64 {
        let delta = generate_delta(
            &mirror,
            &UpdateConfig {
                insertions: 60,
                deletions: 40,
                noise_percent: 10.0,
                seed: 50 + round,
                ..UpdateConfig::default()
            },
        );
        inc.apply(&mut catalog, &delta).unwrap();
        delta.apply(&mut mirror).unwrap();

        let incremental = inc.report(&catalog).unwrap();
        let mut scratch = Catalog::new();
        scratch.create(mirror.clone()).unwrap();
        let from_scratch = BatchDetector::new(&schema, &constraints)
            .unwrap()
            .detect(&mut scratch)
            .unwrap();
        assert_eq!(incremental.num_sv(), from_scratch.num_sv(), "round {round}");
        assert_eq!(incremental.num_mv(), from_scratch.num_mv(), "round {round}");
        assert_eq!(
            catalog.get("cust").unwrap().len(),
            mirror.len(),
            "round {round}: table sizes diverged"
        );
    }
}

#[test]
fn scaled_tableaux_are_detected_consistently_by_both_paths() {
    let (data, _) = generate(&CustConfig {
        size: 250,
        noise_percent: 6.0,
        seed: 21,
        ..CustConfig::default()
    });
    let schema = data.schema().clone();
    let constraints = workload_with_scaled_constraint(40, 5);

    let semantic = SemanticDetector::new(&schema, &constraints)
        .unwrap()
        .detect(&data)
        .unwrap();
    let mut catalog = Catalog::new();
    catalog.create(data).unwrap();
    let sql = BatchDetector::new(&schema, &constraints)
        .unwrap()
        .detect(&mut catalog)
        .unwrap();
    assert_eq!(sql.num_sv(), semantic.num_sv());
    assert_eq!(sql.num_mv(), semantic.num_mv());
}

#[test]
fn constraint_round_trip_through_text_preserves_detection_results() {
    let (schema, data, constraints) = workload(200, 5.0, 31);
    // Serialise every constraint to the textual syntax and parse it back.
    let reparsed: Vec<ECfd> = constraints
        .iter()
        .map(|c| parse_ecfd(&c.to_string()).unwrap())
        .collect();
    assert_eq!(constraints, reparsed);

    let a = SemanticDetector::new(&schema, &constraints)
        .unwrap()
        .detect(&data)
        .unwrap();
    let b = SemanticDetector::new(&schema, &reparsed)
        .unwrap()
        .detect(&data)
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn workload_constraints_are_satisfiable_and_irredundant_enough() {
    let (schema, _, constraints) = workload(50, 0.0, 41);
    assert!(satisfiability::is_satisfiable(&schema, &constraints).unwrap());

    // The MAXSS approximation (being an approximation) may fall a constraint
    // short of the optimum on this large-active-domain workload, but it must
    // never conclude "unsatisfiable" for a satisfiable set.
    let outcome = maxss::approximate_max_satisfiable(
        &schema,
        &constraints,
        MaxGSatSolver::LocalSearch {
            restarts: 8,
            max_flips: 400,
        },
        0.1,
        3,
    )
    .unwrap();
    assert!(outcome.satisfiable_subset.len() + 1 >= constraints.len());
    assert_ne!(
        outcome.verdict,
        ecfd::core::maxss::SatisfiabilityVerdict::Unsatisfiable
    );
}

#[test]
fn sql_engine_round_trips_detection_flags() {
    // After BATCHDETECT, the flags are ordinary columns and can be queried
    // through the SQL engine like any other data.
    let (schema, data, constraints) = workload(200, 5.0, 61);
    let mut catalog = Catalog::new();
    catalog.create(data).unwrap();
    let report = BatchDetector::new(&schema, &constraints)
        .unwrap()
        .detect(&mut catalog)
        .unwrap();

    let engine = Engine::new();
    let sv_count = engine
        .query(&catalog, "SELECT COUNT(*) FROM cust WHERE SV = 1")
        .unwrap();
    assert_eq!(
        sv_count.scalar().and_then(Value::as_int),
        Some(report.num_sv() as i64)
    );
    let mv_count = engine
        .query(&catalog, "SELECT COUNT(*) FROM cust WHERE MV = 1")
        .unwrap();
    assert_eq!(
        mv_count.scalar().and_then(Value::as_int),
        Some(report.num_mv() as i64)
    );
}

#[test]
fn csv_round_trip_preserves_detection_results() {
    let (schema, data, constraints) = workload(150, 5.0, 71);
    let text = ecfd::relation::csv::to_csv(&data);
    let reloaded = ecfd::relation::csv::from_csv(schema.clone(), &text).unwrap();
    assert_eq!(reloaded, data);

    let a = SemanticDetector::new(&schema, &constraints)
        .unwrap()
        .detect(&data)
        .unwrap();
    let b = SemanticDetector::new(&schema, &constraints)
        .unwrap()
        .detect(&reloaded)
        .unwrap();
    assert_eq!(a.num_sv(), b.num_sv());
    assert_eq!(a.num_mv(), b.num_mv());
}
