//! Differential safety net of the dictionary-encoded columnar refactor.
//!
//! The coded detection core must be observationally identical to the
//! pre-refactor value-based semantics:
//!
//! * the coded semantic detector flags exactly the rows the value-based
//!   reference semantics (`ecfd_core::satisfaction::check_all`) flags;
//! * 1 worker and N workers produce byte-identical `DetectionReport`s and
//!   (normalized) `EvidenceReport`s — the hash-partitioned sharded scan may
//!   not change a single byte of output;
//! * the property holds on the datagen workloads too, including after mixed
//!   insert/delete deltas applied through the session's backends, where all
//!   four backends (coded semantic, coded incremental, value-based SQL
//!   readback, plan executor) must agree record-for-record.

use ecfd::datagen::constraints::workload_constraints;
use ecfd::datagen::{generate, generate_delta, CustConfig, UpdateConfig};
use ecfd::prelude::*;
use proptest::prelude::*;

const CITIES: [&str; 5] = ["Albany", "Troy", "NYC", "LI", "Utica"];
const CODES: [&str; 4] = ["518", "212", "315", "716"];

fn schema() -> Schema {
    Schema::builder("cust")
        .attr("CT", DataType::Str)
        .attr("AC", DataType::Str)
        .attr("ZIP", DataType::Str)
        .build()
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (0..CITIES.len(), 0..CODES.len(), 0..3usize)
        .prop_map(|(c, a, z)| Tuple::from_iter([CITIES[c], CODES[a], &format!("zip{z}")]))
}

fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(arb_tuple(), 0..30)
        .prop_map(|tuples| Relation::with_tuples(schema(), tuples).expect("tuples fit the schema"))
}

fn arb_pattern_value(values: &'static [&'static str]) -> impl Strategy<Value = PatternValue> {
    prop_oneof![
        Just(PatternValue::Wildcard),
        proptest::collection::btree_set(0..values.len(), 1..=2)
            .prop_map(move |idx| PatternValue::in_set(idx.into_iter().map(|i| values[i]))),
        proptest::collection::btree_set(0..values.len(), 1..=2)
            .prop_map(move |idx| PatternValue::not_in_set(idx.into_iter().map(|i| values[i]))),
    ]
}

fn arb_ecfd() -> impl Strategy<Value = ECfd> {
    (
        arb_pattern_value(&CITIES),
        arb_pattern_value(&CODES),
        proptest::option::of(arb_pattern_value(&CODES)),
    )
        .prop_map(|(lhs, rhs, second)| {
            let mut tableau = vec![PatternTuple::new(vec![lhs.clone()], vec![rhs])];
            if let Some(extra) = second {
                tableau.push(PatternTuple::new(vec![lhs], vec![extra]));
            }
            ECfd::new(
                "cust",
                vec!["CT".into()],
                vec!["AC".into()],
                vec![],
                tableau,
            )
            .expect("generated constraints are well-formed")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Coded detection equals the value-based reference semantics, and the
    /// sharded parallel scan changes nothing: identical reports, evidence
    /// and decoded group state at 1 and 4 workers.
    #[test]
    fn coded_detection_matches_value_semantics_at_any_parallelism(
        data in arb_relation(),
        constraints in proptest::collection::vec(arb_ecfd(), 1..4),
    ) {
        let reference = check_all(&data, &constraints).unwrap();
        let expected = DetectionReport::from_violation_set(reference.violations(), data.len());

        let sequential = SemanticDetector::new(&schema(), &constraints).unwrap()
            .with_parallelism(Parallelism::Fixed(1));
        let sharded = SemanticDetector::new(&schema(), &constraints).unwrap()
            .with_parallelism(Parallelism::Fixed(4));

        let (seq_report, seq_evidence) = sequential.detect_with_evidence(&data).unwrap();
        let (par_report, par_evidence) = sharded.detect_with_evidence(&data).unwrap();

        prop_assert_eq!(&seq_report.sv_rows, &expected.sv_rows);
        prop_assert_eq!(&seq_report.mv_rows, &expected.mv_rows);
        prop_assert_eq!(&seq_report, &par_report);
        prop_assert_eq!(&seq_evidence, &par_evidence);
        prop_assert_eq!(seq_evidence.detection_report(), seq_report);
    }
}

/// One session per backend per parallelism: every combination must produce
/// identical reports and evidence on the datagen workloads, initially and
/// after a mixed insert/delete delta.
#[test]
fn backends_agree_on_datagen_workloads_at_one_and_n_threads() {
    for (size, noise, seed) in [(200usize, 5.0f64, 3u64), (300, 8.0, 9)] {
        let (data, _) = generate(&CustConfig {
            size,
            noise_percent: noise,
            seed,
            ..CustConfig::default()
        });
        let constraints = workload_constraints();
        let delta = generate_delta(
            &data,
            &UpdateConfig {
                insertions: 35,
                deletions: 20,
                noise_percent: 10.0,
                seed: seed + 50,
                ..UpdateConfig::default()
            },
        );
        assert!(!delta.insertions.is_empty() && !delta.deletions.is_empty());

        let mut outputs = Vec::new();
        for kind in BackendKind::ALL {
            for threads in [1usize, 4] {
                let policy = ecfd::session::RoutingPolicy::fixed(kind)
                    .with_parallelism(Parallelism::Fixed(threads));
                let mut session = Session::new().with_policy(policy);
                session.load(data.clone()).unwrap();
                session.register(&constraints).unwrap();

                let report = session.detect().unwrap();
                let evidence = session.explain().unwrap();
                let after = session.apply(&delta).unwrap();
                let after_evidence = session.explain().unwrap();
                outputs.push((
                    format!("{kind}@{threads}"),
                    report,
                    evidence.normalized(),
                    after,
                    after_evidence.normalized(),
                ));
            }
        }
        assert!(
            !outputs[0].1.is_clean(),
            "noisy workloads must produce violations"
        );
        for pair in outputs.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert_eq!(
                a.1, b.1,
                "initial reports: {} vs {} (size {size})",
                a.0, b.0
            );
            assert_eq!(a.2, b.2, "initial evidence: {} vs {}", a.0, b.0);
            assert_eq!(a.3, b.3, "post-delta reports: {} vs {}", a.0, b.0);
            assert_eq!(a.4, b.4, "post-delta evidence: {} vs {}", a.0, b.0);
        }
    }
}

/// A sequence of deltas through the incremental maintainer at N workers must
/// track a from-scratch coded pass *and* the value-based reference at every
/// step.
#[test]
fn incremental_maintenance_tracks_reference_semantics_under_deltas() {
    let (data, _) = generate(&CustConfig {
        size: 250,
        noise_percent: 6.0,
        seed: 17,
        ..CustConfig::default()
    });
    let constraints = workload_constraints();
    let mut session = Session::new().with_policy(
        ecfd::session::RoutingPolicy::fixed(BackendKind::Incremental)
            .with_parallelism(Parallelism::Fixed(4)),
    );
    session.load(data.clone()).unwrap();
    session.register(&constraints).unwrap();
    session.detect().unwrap();

    let mut mirror = data;
    for step in 0..3u64 {
        let delta = generate_delta(
            &mirror,
            &UpdateConfig {
                insertions: 20,
                deletions: 12,
                noise_percent: 8.0,
                seed: 100 + step,
                ..UpdateConfig::default()
            },
        );
        let incremental = session.apply(&delta).unwrap();
        delta.apply(&mut mirror).unwrap();

        let reference = check_all(&mirror, &constraints).unwrap();
        let expected = DetectionReport::from_violation_set(reference.violations(), mirror.len());
        // Row ids diverge between session table and mirror after deletions,
        // so compare the flagged tuples, not the ids.
        let project = |rel: &Relation, rows: &std::collections::BTreeSet<RowId>| {
            let mut out: Vec<Vec<Value>> = rows
                .iter()
                .map(|r| rel.get(*r).unwrap().values()[..3].to_vec())
                .collect();
            out.sort();
            out
        };
        // The stored table keeps the session's row ids (plus flag columns);
        // `project` only reads the base prefix.
        let session_data = session.catalog().get("cust").unwrap();
        assert_eq!(
            project(session_data, &incremental.sv_rows),
            project(&mirror, &expected.sv_rows),
            "SV diverges from the reference at step {step}"
        );
        assert_eq!(
            project(session_data, &incremental.mv_rows),
            project(&mirror, &expected.mv_rows),
            "MV diverges from the reference at step {step}"
        );
    }
}
