//! Integration tests for the `Session` facade: the differential contract
//! across all four `DetectorBackend` implementations on generated workloads
//! (including after mixed insert/delete deltas), backend auto-routing, and
//! the session-driven detect → explain → repair → re-verify pipeline.

use ecfd::datagen::constraints::workload_constraints;
use ecfd::datagen::{generate, generate_delta, CustConfig, UpdateConfig};
use ecfd::prelude::*;

fn workload(size: usize, noise: f64, seed: u64) -> (Relation, Vec<ECfd>) {
    let (data, _) = generate(&CustConfig {
        size,
        noise_percent: noise,
        seed,
        ..CustConfig::default()
    });
    (data, workload_constraints())
}

fn session_for(kind: BackendKind, data: Relation, constraints: &[ECfd]) -> Session {
    let mut session = Session::new().with_policy(RoutingPolicy::fixed(kind));
    session.load(data).expect("load succeeds");
    session.register(constraints).expect("constraints compile");
    session
}

/// Satellite contract: all four backends produce identical
/// `DetectionReport`s and `EvidenceReport`s through the session API on the
/// datagen workloads, including after a mixed insert/delete `Delta`.
#[test]
fn all_backends_agree_on_generated_workloads_and_after_mixed_deltas() {
    for (size, noise, seed) in [(200usize, 5.0f64, 2u64), (350, 9.0, 7)] {
        let (data, constraints) = workload(size, noise, seed);
        let delta = generate_delta(
            &data,
            &UpdateConfig {
                insertions: 40,
                deletions: 25,
                noise_percent: 10.0,
                seed: seed + 100,
                ..UpdateConfig::default()
            },
        );
        assert!(!delta.insertions.is_empty() && !delta.deletions.is_empty());

        let mut outputs = Vec::new();
        for kind in BackendKind::ALL {
            let mut session = session_for(kind, data.clone(), &constraints);
            let report = session.detect().expect("detection runs");
            let evidence = session.explain().expect("evidence cached");
            assert_eq!(session.last_backend(), Some(kind));
            assert_eq!(evidence.detection_report(), report);

            let after = session.apply(&delta).expect("delta applies");
            let after_evidence = session.explain().expect("evidence refreshed");
            assert_eq!(after_evidence.detection_report(), after);

            outputs.push((
                kind,
                report,
                evidence.normalized(),
                after,
                after_evidence.normalized(),
            ));
        }
        assert!(
            !outputs[0].1.is_clean(),
            "noisy workloads must produce violations"
        );
        for pair in outputs.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert_eq!(
                a.1, b.1,
                "initial reports: {} vs {} (size {size})",
                a.0, b.0
            );
            assert_eq!(a.2, b.2, "initial evidence: {} vs {}", a.0, b.0);
            assert_eq!(a.3, b.3, "post-delta reports: {} vs {}", a.0, b.0);
            assert_eq!(a.4, b.4, "post-delta evidence: {} vs {}", a.0, b.0);
        }
    }
}

#[test]
fn auto_routing_picks_incremental_below_the_threshold_and_batch_above() {
    let (data, constraints) = workload(400, 5.0, 11);
    let mut session = Session::new(); // default policy: 25% threshold
    session.load(data.clone()).unwrap();
    session.register(&constraints).unwrap();
    session.detect().unwrap();
    assert_eq!(session.last_backend(), Some(BackendKind::Semantic));

    let small = generate_delta(
        &data,
        &UpdateConfig {
            insertions: 20,
            deletions: 20,
            noise_percent: 5.0,
            seed: 21,
            ..UpdateConfig::default()
        },
    );
    session.apply(&small).unwrap();
    assert_eq!(session.last_backend(), Some(BackendKind::Incremental));

    let large = generate_delta(
        &data,
        &UpdateConfig {
            insertions: 300,
            deletions: 0,
            noise_percent: 5.0,
            seed: 22,
            ..UpdateConfig::default()
        },
    );
    session.apply(&large).unwrap();
    assert_eq!(session.last_backend(), Some(BackendKind::Semantic));

    // Whatever the routing history, the flags must match a from-scratch pass.
    let routed = session.detect_with(BackendKind::Semantic).unwrap();
    let mut mirror = data;
    small.apply(&mut mirror).unwrap();
    large.apply(&mut mirror).unwrap();
    let scratch = SemanticDetector::new(mirror.schema(), &constraints)
        .unwrap()
        .detect(&mirror)
        .unwrap();
    assert_eq!(routed.num_sv(), scratch.num_sv());
    assert_eq!(routed.num_mv(), scratch.num_mv());
    assert_eq!(routed.total_rows, scratch.total_rows);
}

#[test]
fn session_repair_cleans_generated_workloads_end_to_end() {
    let (data, constraints) = workload(300, 5.0, 13);
    let mut session = Session::new().with_cost_model(ecfd::repair::EditDistanceCost::default());
    session.load(data).unwrap();
    session.register(&constraints).unwrap();

    let before = session.detect().unwrap();
    assert!(!before.is_clean());
    let evidence = session.explain().unwrap();
    for &row in before.violating_rows().iter() {
        assert!(
            !evidence.for_row(row).is_empty(),
            "flagged row {row} lacks evidence"
        );
    }

    let outcome = session.repair().unwrap();
    assert!(outcome.final_report.is_clean());
    assert!(outcome.num_deletions() <= before.num_violations());
    assert_eq!(session.stage(), Some(Stage::Repaired));
    // Both the cache and every backend agree the instance is clean now.
    assert!(session.report().unwrap().is_clean());
    for kind in BackendKind::ALL {
        assert!(session.detect_with(kind).unwrap().is_clean(), "{kind}");
    }
}

#[test]
fn register_compiles_once_and_shares_the_set_across_backends() {
    let (data, constraints) = workload(150, 5.0, 17);
    let mut session = Session::new();
    session.load(data).unwrap();
    session.register(&constraints).unwrap();
    let set = session.constraints("cust").unwrap().clone();
    assert_eq!(set.source().len(), constraints.len());
    assert!(set.num_patterns() >= set.len());

    // The detectors the session routes through see exactly the compiled set:
    // evidence constraint indices stay within it across every backend.
    for kind in BackendKind::ALL {
        session.detect_with(kind).unwrap();
        let evidence = session.explain().unwrap();
        for sv in &evidence.sv {
            assert!(sv.source.constraint < set.len(), "{kind}");
        }
        for group in &evidence.mv_groups {
            assert!(group.source.constraint < set.len(), "{kind}");
        }
    }
}

#[test]
fn lifecycle_survives_reload_and_further_registration() {
    let (data, constraints) = workload(120, 5.0, 19);
    let mut session = Session::new();
    session.load(data.clone()).unwrap();
    session.register(&constraints).unwrap();
    let first = session.detect().unwrap();

    // Re-loading the same data rewinds to Registered and drops the cache…
    session.load(data).unwrap();
    assert_eq!(session.stage(), Some(Stage::Registered));
    assert!(session.report().is_none());
    // …but a fresh detect reproduces the same picture.
    let second = session.detect().unwrap();
    assert_eq!(first, second);

    // Registering an additional constraint invalidates and extends the set.
    let extra = parse_ecfd("cust: [CT] -> [AC] | [], { {Springfield} || {999} }").unwrap();
    session.register(std::slice::from_ref(&extra)).unwrap();
    assert_eq!(session.stage(), Some(Stage::Registered));
    assert_eq!(
        session.constraints("cust").unwrap().source().len(),
        constraints.len() + 1
    );
    session.detect().unwrap();
}
