//! Differential safety net of the plan-executing backend.
//!
//! A compiled detection plan is only an *execution strategy*: whatever the
//! driver (fused columnar scan, unfused columnar scan, SQL pushdown) and
//! whatever the worker fan-out, its output must be byte-identical to the
//! three existing backends:
//!
//! * proptest-generated relations and constraint sets: every plan driver
//!   matches the semantic detector's report and normalized evidence at 1
//!   and 4 workers;
//! * the datagen workloads, including after mixed insert/delete deltas
//!   routed through sessions: a plan-routed session agrees record-for-record
//!   with semantic-, SQL- and incremental-routed sessions.

use ecfd::datagen::constraints::workload_constraints;
use ecfd::datagen::{generate, generate_delta, CustConfig, UpdateConfig};
use ecfd::prelude::*;
use proptest::prelude::*;

const CITIES: [&str; 5] = ["Albany", "Troy", "NYC", "LI", "Utica"];
const CODES: [&str; 4] = ["518", "212", "315", "716"];

fn schema() -> Schema {
    Schema::builder("cust")
        .attr("CT", DataType::Str)
        .attr("AC", DataType::Str)
        .attr("ZIP", DataType::Str)
        .build()
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (0..CITIES.len(), 0..CODES.len(), 0..3usize)
        .prop_map(|(c, a, z)| Tuple::from_iter([CITIES[c], CODES[a], &format!("zip{z}")]))
}

fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(arb_tuple(), 0..30)
        .prop_map(|tuples| Relation::with_tuples(schema(), tuples).expect("tuples fit the schema"))
}

fn arb_pattern_value(values: &'static [&'static str]) -> impl Strategy<Value = PatternValue> {
    prop_oneof![
        Just(PatternValue::Wildcard),
        proptest::collection::btree_set(0..values.len(), 1..=2)
            .prop_map(move |idx| PatternValue::in_set(idx.into_iter().map(|i| values[i]))),
        proptest::collection::btree_set(0..values.len(), 1..=2)
            .prop_map(move |idx| PatternValue::not_in_set(idx.into_iter().map(|i| values[i]))),
    ]
}

/// Constraints over two different X attribute sets ([CT] and [AC]), so the
/// generated sets exercise both sides of shared-scan fusion: constraints
/// that fuse into one scan and constraints that stay on scans of their own.
fn arb_ecfd() -> impl Strategy<Value = ECfd> {
    (
        any::<bool>(),
        arb_pattern_value(&CITIES),
        arb_pattern_value(&CODES),
        proptest::option::of(arb_pattern_value(&CODES)),
    )
        .prop_map(|(on_ct, city, code, second)| {
            let (x, y, lhs, rhs): (&str, &str, PatternValue, PatternValue) = if on_ct {
                ("CT", "AC", city, code)
            } else {
                ("AC", "CT", code, city)
            };
            let mut tableau = vec![PatternTuple::new(vec![lhs.clone()], vec![rhs])];
            if let Some(extra) = second {
                let extra = if on_ct {
                    extra
                } else {
                    // Keep RHS pattern values inside the Y attribute's domain.
                    PatternValue::Wildcard
                };
                tableau.push(PatternTuple::new(vec![lhs], vec![extra]));
            }
            ECfd::new("cust", vec![x.into()], vec![y.into()], vec![], tableau)
                .expect("generated constraints are well-formed")
        })
}

fn detect_all_drivers(
    set: &ConstraintSet,
    data: &Relation,
    threads: usize,
) -> Vec<(&'static str, DetectionReport, EvidenceReport)> {
    let drivers: Vec<(&'static str, PlanBackend)> = vec![
        ("columnar-fused", PlanBackend::from_set(set).unwrap()),
        (
            "columnar-unfused",
            PlanBackend::from_set_unfused(set).unwrap(),
        ),
        ("sql-pushdown", PlanBackend::from_set_sql(set).unwrap()),
    ];
    drivers
        .into_iter()
        .map(|(label, mut backend)| {
            backend.set_parallelism(Parallelism::Fixed(threads));
            let mut catalog = Catalog::new();
            catalog.create(data.clone()).unwrap();
            let (report, mut evidence) = backend.detect(&mut catalog).unwrap();
            evidence.normalize();
            (label, report, evidence)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every plan driver reproduces the semantic detector's report and
    /// normalized evidence byte-for-byte, at 1 and 4 workers, on arbitrary
    /// relations and constraint sets (fusing and non-fusing alike).
    #[test]
    fn plan_drivers_match_the_semantic_detector_at_any_parallelism(
        data in arb_relation(),
        constraints in proptest::collection::vec(arb_ecfd(), 1..4),
    ) {
        let set = ConstraintSet::compile(&schema(), &constraints).unwrap();
        let reference = SemanticDetector::from_set(&set)
            .with_parallelism(Parallelism::Fixed(1));
        let (want_report, mut want_evidence) =
            reference.detect_with_evidence(&data).unwrap();
        want_evidence.normalize();

        for threads in [1usize, 4] {
            for (label, report, evidence) in detect_all_drivers(&set, &data, threads) {
                prop_assert_eq!(&report, &want_report, "driver {}@{}", label, threads);
                prop_assert_eq!(&evidence, &want_evidence, "driver {}@{}", label, threads);
            }
        }
    }
}

/// The plan-routed session against all three existing backends on the
/// datagen workloads: identical reports and evidence initially and after a
/// mixed insert/delete delta, at 1 and 4 workers.
#[test]
fn plan_sessions_agree_with_every_backend_on_datagen_workloads() {
    for (size, noise, seed) in [(200usize, 5.0f64, 11u64), (300, 8.0, 23)] {
        let (data, _) = generate(&CustConfig {
            size,
            noise_percent: noise,
            seed,
            ..CustConfig::default()
        });
        let constraints = workload_constraints();
        let delta = generate_delta(
            &data,
            &UpdateConfig {
                insertions: 35,
                deletions: 20,
                noise_percent: 10.0,
                seed: seed + 50,
                ..UpdateConfig::default()
            },
        );
        assert!(!delta.insertions.is_empty() && !delta.deletions.is_empty());

        let run = |kind: BackendKind, threads: usize| {
            let policy = RoutingPolicy::fixed(kind).with_parallelism(Parallelism::Fixed(threads));
            let mut session = Session::new().with_policy(policy);
            session.load(data.clone()).unwrap();
            session.register(&constraints).unwrap();
            let report = session.detect().unwrap();
            let evidence = session.explain().unwrap().normalized();
            let after = session.apply(&delta).unwrap();
            let after_evidence = session.explain().unwrap().normalized();
            (report, evidence, after, after_evidence)
        };

        let reference = run(BackendKind::Plan, 1);
        assert!(
            !reference.0.is_clean(),
            "noisy workloads must produce violations"
        );
        for kind in BackendKind::ALL {
            for threads in [1usize, 4] {
                let got = run(kind, threads);
                assert_eq!(
                    got, reference,
                    "{kind}@{threads} diverges from plan@1 (size {size})"
                );
            }
        }
    }
}

/// The fused and unfused plans are different shapes of the same semantics:
/// on a fusing workload the optimized plan has strictly fewer scans, yet
/// both execute to identical output.
#[test]
fn fusion_changes_the_plan_shape_but_not_the_answer() {
    let (data, _) = generate(&CustConfig {
        size: 150,
        noise_percent: 6.0,
        seed: 7,
        ..CustConfig::default()
    });
    let constraints = workload_constraints();
    let set = ConstraintSet::compile(data.schema(), &constraints).unwrap();

    let fused = Plan::compile(&set).unwrap();
    let unfused = Plan::compile_unfused(&set).unwrap();
    assert!(fused.is_fused() && !unfused.is_fused());
    assert!(
        fused.num_scans() < unfused.num_scans(),
        "the workload constraints share X attribute sets"
    );
    assert_eq!(fused.num_flags(), unfused.num_flags());

    let outputs = detect_all_drivers(&set, &data, 2);
    assert_eq!(outputs[0].1, outputs[1].1);
    assert_eq!(outputs[0].2, outputs[1].2);
}
