//! Differential safety net of the sharded serving layer (PR 10).
//!
//! The signature invariant: a sharded deployment's **merged** report and
//! evidence must be byte-identical to what one unsharded session fed the
//! same delta stream publishes — at every tested shard count, with both
//! serial and parallel merge-layer scans, for both shard-aligned and
//! cross-shard constraint sets.
//!
//! The suite drives the per-shard writers synchronously (every submitted
//! delta is applied and published before the comparison), so the merged
//! view is compared at quiescent cuts where the unsharded oracle is exact.

use ecfd::datagen::constraints::workload_constraints;
use ecfd::datagen::{generate, generate_delta, CustConfig, UpdateConfig};
use ecfd::relation::{Delta, Relation, Tuple};
use ecfd::serve::{ShardedConfig, ShardedHub};
use ecfd::session::Session;
use proptest::prelude::*;
use std::time::Duration;

const TABLE: &str = "cust";

/// Shard keys exercising both halves of the merge layer: `CT` appears in
/// several constraints' LHS (those are shard-aligned and resolve locally),
/// while `PN` appears in none (every multi-tuple group crosses shards and
/// goes through the open-group merge).
const SHARD_KEYS: [&str; 2] = ["CT", "PN"];

fn workload_session(base: &Relation) -> Session {
    let mut session = Session::new();
    session.load(base.clone()).expect("base loads");
    session
        .register(&workload_constraints())
        .expect("workload constraints register");
    session
}

/// Applies `rounds` generated deltas to a sharded deployment and an
/// unsharded oracle in lockstep, asserting byte-identical merged output
/// after every round.
fn assert_sharded_matches_oracle(
    base: &Relation,
    deltas: &[Delta],
    shards: usize,
    shard_key: &str,
    workers: Option<usize>,
) {
    let mut config = ShardedConfig::new(shards, shard_key);
    config.detect_workers = workers;
    let (mut writers, hub) =
        ShardedHub::bootstrap(workload_session(base), &config).expect("sharded bootstrap");
    let mut oracle = workload_session(base);

    for (round, delta) in deltas.iter().enumerate() {
        hub.submit(delta.clone()).expect("submit");
        oracle.apply_on(TABLE, delta).expect("oracle apply");
        // Drive every shard writer to quiescence before comparing.
        for (s, writer) in writers.iter_mut().enumerate() {
            let shard_hub = &hub.shard_hubs()[s];
            while shard_hub.queue().pending() > 0 {
                writer
                    .step(shard_hub, Duration::from_millis(50))
                    .expect("writer step");
            }
        }

        let merged = hub.merged().expect("merge");
        let expected = oracle.detect_on(TABLE).expect("oracle detect");
        assert_eq!(
            merged.report, expected,
            "round {round}: merged report differs from the unsharded oracle \
             ({shards} shard(s) by {shard_key}, workers {workers:?})"
        );
        let oracle_snap = oracle.snapshot().expect("oracle snapshot");
        assert_eq!(
            merged.evidence,
            *oracle_snap.evidence(),
            "round {round}: merged evidence differs from the unsharded oracle \
             ({shards} shard(s) by {shard_key}, workers {workers:?})"
        );

        // DETECT FRESH (cache bypass) re-derives the same bytes.
        let fresh = hub.merged_fresh().expect("fresh merge");
        assert_eq!(fresh.report, expected, "round {round}: fresh merge differs");

        // The composed single-session snapshot — the CHECK / REPAIR-PLAN
        // oracle path — agrees as well.
        let composed = hub.compose().expect("compose");
        assert_eq!(
            *composed.report(),
            expected,
            "round {round}: composed snapshot differs"
        );
    }
}

/// Deterministic delta streams from the datagen update generator: mixed
/// insert/delete rounds against an evolving mirror of the instance.
fn datagen_rounds(base: &Relation, rounds: usize, seed: u64) -> Vec<Delta> {
    let mut mirror = base.clone();
    let mut deltas = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let delta = generate_delta(
            &mirror,
            &UpdateConfig {
                insertions: 8,
                deletions: 5,
                noise_percent: 25.0,
                seed: seed.wrapping_add(round as u64),
                extra_cities: 4,
                num_items: 6,
            },
        );
        delta.apply(&mut mirror).expect("mirror apply");
        deltas.push(delta.clone());
    }
    deltas
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline matrix: datagen workloads at 1/2/4 shards × 1/4 detect
    /// workers × aligned ("CT") and cross-shard ("PN") shard keys.
    #[test]
    fn sharded_merge_is_byte_identical_to_unsharded_oracle(seed in 0u64..1_000) {
        let (base, _) = generate(&CustConfig {
            size: 30,
            noise_percent: 20.0,
            seed,
            extra_cities: 4,
            num_items: 6,
        });
        let deltas = datagen_rounds(&base, 3, seed.wrapping_mul(31).wrapping_add(7));
        for shard_key in SHARD_KEYS {
            for shards in [1usize, 2, 4] {
                for workers in [Some(1), Some(4)] {
                    assert_sharded_matches_oracle(&base, &deltas, shards, shard_key, workers);
                }
            }
        }
    }
}

/// Duplicate tuples across deltas: deletions remove *all* equal rows in the
/// oracle, and all of them live on the routed shard — the two must agree.
#[test]
fn duplicate_rows_delete_identically_across_shards() {
    let (base, _) = generate(&CustConfig {
        size: 12,
        noise_percent: 0.0,
        seed: 5,
        extra_cities: 2,
        num_items: 4,
    });
    let dup: Tuple = base.tuples().next().expect("non-empty base").clone();
    let deltas = vec![
        Delta::insert_only(vec![dup.clone(), dup.clone(), dup.clone()]),
        Delta {
            insertions: vec![],
            deletions: vec![dup],
        },
    ];
    for shards in [2usize, 4] {
        assert_sharded_matches_oracle(&base, &deltas, shards, "CT", Some(1));
    }
}

/// An empty base instance: the first delta creates every row, ids start at 0
/// on both sides.
#[test]
fn sharding_an_empty_base_matches_oracle() {
    let (seed_rows, _) = generate(&CustConfig {
        size: 10,
        noise_percent: 30.0,
        seed: 11,
        extra_cities: 2,
        num_items: 4,
    });
    let empty = Relation::new(seed_rows.schema().clone());
    let first = Delta::insert_only(seed_rows.tuples().cloned().collect());
    let mut deltas = vec![first];
    deltas.extend(datagen_rounds(&seed_rows, 2, 99));
    for shards in [1usize, 2, 4] {
        assert_sharded_matches_oracle(&empty, &deltas, shards, "AC", Some(2));
    }
}
