//! Fails on broken intra-repo links in the Markdown documentation.
//!
//! Scans every `*.md` at the repository root and under `docs/`, extracts
//! `[text](target)` links outside fenced code blocks, and checks that every
//! relative target resolves to an existing file or directory — and that
//! `file#anchor` targets name a heading that actually exists in the target
//! file (GitHub-style slugs). CI runs this as the docs-link gate.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Every Markdown file we publish: the repo root plus `docs/`.
fn markdown_files() -> Vec<PathBuf> {
    let mut files = Vec::new();
    for dir in [repo_root(), repo_root().join("docs")] {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "md") {
                files.push(path);
            }
        }
    }
    files.sort();
    assert!(
        files.iter().any(|p| p.ends_with("ARCHITECTURE.md")),
        "expected the architecture doc among {files:?}"
    );
    files
}

/// `[text](target)` occurrences outside fenced code blocks.
fn extract_links(text: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let after = &rest[open + 2..];
            let Some(close) = after.find(')') else { break };
            links.push(after[..close].to_string());
            rest = &after[close + 1..];
        }
    }
    links
}

/// GitHub-style heading slug: lowercase, spaces to hyphens, punctuation
/// dropped (hyphens and underscores kept).
fn slugify(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() || c == '-' || c == '_' {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' {
                Some('-')
            } else {
                None
            }
        })
        .collect()
}

fn heading_slugs(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let mut slugs = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence && line.starts_with('#') {
            slugs.push(slugify(line.trim_start_matches('#')));
        }
    }
    slugs
}

#[test]
fn every_intra_repo_markdown_link_resolves() {
    let mut broken = Vec::new();
    for file in markdown_files() {
        let text = std::fs::read_to_string(&file).expect("markdown file reads");
        let dir = file.parent().expect("file has a parent");
        for target in extract_links(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue; // external; offline CI cannot check these
            }
            let (path_part, anchor) = match target.split_once('#') {
                Some((p, a)) => (p, Some(a.to_string())),
                None => (target.as_str(), None),
            };
            let resolved = if path_part.is_empty() {
                file.clone() // pure-anchor link into the same file
            } else {
                dir.join(path_part)
            };
            if !resolved.exists() {
                broken.push(format!("{}: `{target}` (missing file)", file.display()));
                continue;
            }
            if let Some(anchor) = anchor {
                if resolved.is_file()
                    && resolved.extension().is_some_and(|e| e == "md")
                    && !heading_slugs(&resolved).contains(&anchor)
                {
                    broken.push(format!("{}: `{target}` (missing anchor)", file.display()));
                }
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken intra-repo documentation links:\n  {}",
        broken.join("\n  ")
    );
}

#[test]
fn link_extraction_and_slugs_behave() {
    let links = extract_links(
        "see [a](x.md) and [b](y.md#sec) twice [c](z/)\n```\nnot [a](code.md)\n```\n",
    );
    assert_eq!(links, vec!["x.md", "y.md#sec", "z/"]);
    assert_eq!(
        slugify("The epoch / snapshot lifecycle (PR 5)"),
        "the-epoch--snapshot-lifecycle-pr-5"
    );
    assert_eq!(slugify("## Serving".trim_start_matches('#')), "serving");
}
