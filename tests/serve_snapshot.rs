//! Snapshot-isolation and protocol tests of the serving layer (`ecfd_serve`).
//!
//! The central assertion (the PR's acceptance criterion): with a writer
//! applying mixed insert/delete deltas at full speed, four concurrent
//! readers each complete `detect` round-trips whose reports are
//! byte-identical to a single-threaded from-scratch detect at the same
//! epoch — i.e. every observed epoch is internally consistent.

use ecfd::prelude::*;
use ecfd::serve::protocol::TupleOp;
use ecfd::serve::{Client, Request, Response, ServeConfig, Server, Writer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn cust_schema() -> Schema {
    Schema::builder("cust")
        .attr("AC", DataType::Str)
        .attr("PN", DataType::Str)
        .attr("NM", DataType::Str)
        .attr("STR", DataType::Str)
        .attr("CT", DataType::Str)
        .attr("ZIP", DataType::Str)
        .build()
}

/// Fig. 1's D0 plus φ1/φ2, as a ready session.
fn ready_session() -> Session {
    let data = Relation::with_tuples(
        cust_schema(),
        [
            Tuple::from_iter(["718", "1111111", "Mike", "Tree Ave.", "Albany", "12238"]),
            Tuple::from_iter(["518", "2222222", "Joe", "Elm Str.", "Colonie", "12205"]),
            Tuple::from_iter(["518", "2222222", "Jim", "Oak Ave.", "Troy", "12181"]),
            Tuple::from_iter(["100", "1111111", "Rick", "8th Ave.", "NYC", "10001"]),
            Tuple::from_iter(["212", "3333333", "Ben", "5th Ave.", "NYC", "10016"]),
            Tuple::from_iter(["646", "4444444", "Ian", "High St.", "NYC", "10011"]),
        ],
    )
    .unwrap();
    let mut session = Session::new();
    session.load(data).unwrap();
    session
        .register_text(
            "cust: [CT] -> [AC] | [], { !{NYC, LI} || _ ; {Albany, Troy, Colonie} || {518} }\n\
             cust: [CT] -> []   | [AC], { {NYC} || {212, 718, 646, 347, 917} }",
        )
        .unwrap();
    session
}

/// A stream of mixed deltas cycling through inserts and deletes of rows that
/// interact with φ1's enforcement groups (Albany/Troy/Colonie) and φ2's NYC
/// pattern, so violation counts keep changing under the readers.
fn delta_stream(round: usize) -> Delta {
    let tag = format!("{:07}", 5000000 + round);
    match round % 4 {
        0 => Delta::insert_only(vec![Tuple::from_iter([
            "519", &tag, "Gen", "Any St.", "Albany", "12239",
        ])]),
        1 => Delta {
            insertions: vec![Tuple::from_iter([
                "999", &tag, "Gen", "Any St.", "NYC", "10099",
            ])],
            deletions: vec![Tuple::from_iter([
                "519",
                &format!("{:07}", 5000000 + round - 1),
                "Gen",
                "Any St.",
                "Albany",
                "12239",
            ])],
        },
        2 => Delta::insert_only(vec![Tuple::from_iter([
            "518", &tag, "Gen", "Any St.", "Troy", "12181",
        ])]),
        _ => Delta::delete_only(vec![Tuple::from_iter([
            "999",
            &format!("{:07}", 5000000 + round - 2),
            "Gen",
            "Any St.",
            "NYC",
            "10099",
        ])]),
    }
}

/// ≥ 4 concurrent readers complete verified detect round-trips while the
/// writer applies deltas at full speed: every report served for an epoch is
/// byte-identical to a single-threaded from-scratch detect over that epoch's
/// frozen view, and evidence collapses to exactly that report.
#[test]
fn concurrent_readers_observe_consistent_epochs_under_write_load() {
    const READERS: usize = 4;
    const MIN_ROUNDS_PER_READER: usize = 25;
    const WRITER_ROUNDS: usize = 60;

    let (mut writer, hub) = Writer::bootstrap(ready_session(), 16, 8).unwrap();
    let initial_epoch = hub.epoch();
    let writing = AtomicBool::new(true);

    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let hub = &hub;
                let writing = &writing;
                scope.spawn(move || {
                    let mut epochs_seen = std::collections::BTreeSet::new();
                    let mut rounds = 0usize;
                    // Keep verifying at least MIN_ROUNDS and until the writer
                    // stops, so every reader genuinely overlaps the write
                    // load instead of finishing before the first publish.
                    while rounds < MIN_ROUNDS_PER_READER || writing.load(Ordering::Relaxed) {
                        rounds += 1;
                        let snap = hub.snapshot();
                        // From-scratch detection over this epoch's frozen
                        // view — deterministic, so identical to a
                        // single-threaded pass.
                        let (fresh_report, fresh_evidence) =
                            snap.detect_fresh_with_evidence().unwrap();
                        assert_eq!(
                            &fresh_report,
                            snap.report(),
                            "epoch {} served a report that from-scratch \
                             detection contradicts",
                            snap.epoch()
                        );
                        assert_eq!(
                            fresh_evidence.normalized(),
                            snap.evidence().normalized(),
                            "epoch {} evidence drifted",
                            snap.epoch()
                        );
                        assert_eq!(
                            snap.evidence().detection_report(),
                            *snap.report(),
                            "evidence must collapse to the published report"
                        );
                        epochs_seen.insert(snap.epoch());
                    }
                    (rounds, epochs_seen)
                })
            })
            .collect();

        // The writer: submit + apply at full speed, no pacing.
        for round in 0..WRITER_ROUNDS {
            hub.submit(delta_stream(round)).unwrap();
            writer.step(&hub, Duration::from_millis(50)).unwrap();
        }
        writing.store(false, Ordering::Relaxed);

        let mut all_epochs = std::collections::BTreeSet::new();
        for handle in readers {
            let (rounds, seen) = handle.join().unwrap();
            assert!(rounds >= MIN_ROUNDS_PER_READER);
            assert!(
                seen.len() <= WRITER_ROUNDS + 1,
                "epochs are published by the writer only"
            );
            all_epochs.extend(seen);
        }
        assert!(
            *all_epochs.iter().max().unwrap() > initial_epoch,
            "readers should have observed the state advancing (saw {all_epochs:?})"
        );
    });

    assert_eq!(hub.stats().write_errors, 0, "{:?}", hub.last_error());
    // After the storm: the final published state equals a clean-room detect
    // over the final session state.
    let final_snap = hub.snapshot();
    assert_eq!(&final_snap.detect_fresh().unwrap(), final_snap.report());
}

/// An old snapshot keeps answering for its own epoch after arbitrarily many
/// later writes — and a same-epoch re-extraction is identical.
#[test]
fn snapshots_pin_their_epoch() {
    let (mut writer, hub) = Writer::bootstrap(ready_session(), 16, 8).unwrap();
    let pinned = hub.snapshot();
    let pinned_report = pinned.report().clone();
    let pinned_rows = pinned.num_rows();

    for round in 0..12 {
        hub.submit(delta_stream(round)).unwrap();
        writer.step(&hub, Duration::from_millis(50)).unwrap();
    }
    assert!(hub.epoch() > pinned.epoch());
    assert_eq!(pinned.num_rows(), pinned_rows);
    assert_eq!(pinned.report(), &pinned_report);
    assert_eq!(&pinned.detect_fresh().unwrap(), &pinned_report);
    // The materialised relation of the old snapshot still has the old rows.
    assert_eq!(pinned.to_relation().unwrap().len(), pinned_rows);
}

/// Protocol round-trip over a live server: APPLY → SYNC → DETECT/CHECK/
/// EXPLAIN/REPAIR-PLAN from two client connections, then shutdown.
#[test]
fn serve_binary_protocol_round_trips_over_tcp() {
    let server = Server::bind(ready_session(), ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    // Client A: liveness, baseline detect.
    let mut a = Client::connect(addr).unwrap();
    a.ping().unwrap();
    let baseline = match a.detect(false).unwrap() {
        Response::Report { total, sv, mv, .. } => (total, sv, mv),
        other => panic!("expected REPORT, got {other:?}"),
    };
    assert_eq!(baseline.0, 6);
    assert_eq!(baseline.1.len(), 2, "t1 and t4 violate φ1/φ2");
    assert!(baseline.2.is_empty());

    // Client B: stream a conflicting Albany row, barrier, observe.
    let mut b = Client::connect(addr).unwrap();
    let zoe = ["519", "7", "Zoe", "Pine St.", "Albany", "12239"];
    let ticket = b.apply(vec![TupleOp::insert(zoe)]).unwrap();
    assert!(ticket >= 1);
    let epoch_after = b.sync().unwrap();

    // Client A (unaware of B) now sees the new epoch, still consistent.
    let (epoch_checked, consistent) = a.check().unwrap();
    assert!(consistent);
    assert!(epoch_checked >= epoch_after);
    match a.detect(true).unwrap() {
        Response::Report { total, mv, .. } => {
            assert_eq!(total, 7);
            assert_eq!(mv.len(), 2, "the two Albany rows now conflict");
        }
        other => panic!("expected REPORT, got {other:?}"),
    }
    match a.explain().unwrap() {
        Response::Evidence { sv, mv, .. } => {
            assert!(!sv.is_empty());
            assert_eq!(mv.len(), 2, "one violating group per φ1 pattern tuple");
            for group in &mv {
                assert_eq!(group.key, vec!["Albany".to_string()]);
                assert_eq!(group.rows.len(), 2);
            }
        }
        other => panic!("expected EVIDENCE, got {other:?}"),
    }
    match a.repair_plan().unwrap() {
        Response::Plan {
            deletions,
            modifications,
            ..
        } => assert!(deletions + modifications > 0, "the instance is dirty"),
        other => panic!("expected PLAN, got {other:?}"),
    }

    // Malformed and rejected requests come back as ERR, connection stays up.
    match a.request(&Request::Apply {
        ops: vec![TupleOp::insert(["too", "few"])],
    }) {
        Ok(Response::Err { message }) => assert!(message.contains("fields")),
        other => panic!("expected ERR, got {other:?}"),
    }
    a.ping().unwrap();

    // Escaped payloads survive the wire: a street with spaces round-trips.
    let spaced = ["212", "8888888", "Ann", "Fifth Ave. #2", "NYC", "10017"];
    b.apply(vec![TupleOp::insert(spaced)]).unwrap();
    b.sync().unwrap();
    match a.detect(false).unwrap() {
        Response::Report { total, .. } => assert_eq!(total, 8),
        other => panic!("expected REPORT, got {other:?}"),
    }

    a.quit().unwrap();
    b.quit().unwrap();
    handle.shutdown();
    let session = server_thread.join().unwrap();
    // The returned session owns the final state: 8 rows, detect agrees with
    // what the last protocol answer said.
    assert_eq!(session.report().map(|r| r.total_rows), Some(8));
}

/// Backpressure propagates to protocol clients: with a capacity-1 queue and
/// a slow writer, a second APPLY blocks until the writer drains — but SYNC
/// still completes once everything lands.
#[test]
fn apply_backpressure_then_sync_completes() {
    let config = ServeConfig {
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let server = Server::bind(ready_session(), config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(addr).unwrap();
    for round in 0..6 {
        let tag = format!("{:07}", 7000000 + round);
        client
            .apply(vec![TupleOp::insert([
                "519", &tag, "Gen", "Any St.", "Albany", "12239",
            ])])
            .unwrap();
    }
    let epoch = client.sync().unwrap();
    assert!(epoch > 0);
    match client.detect(false).unwrap() {
        Response::Report { total, .. } => assert_eq!(total, 12),
        other => panic!("expected REPORT, got {other:?}"),
    }
    let (_, consistent) = client.check().unwrap();
    assert!(consistent);
    client.quit().unwrap();
    handle.shutdown();
    server_thread.join().unwrap();
}
