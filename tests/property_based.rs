//! Property-based tests over randomly generated instances and constraints:
//! the SQL detection path, the native detector and the reference semantics
//! must always agree, and the static analyses must respect their defining
//! properties (small-model soundness, implication ↔ satisfaction).

use ecfd::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A small universe of values keeps collisions (and therefore interesting FD
/// conflicts) frequent.
const CITIES: [&str; 5] = ["Albany", "Troy", "NYC", "LI", "Utica"];
const CODES: [&str; 4] = ["518", "212", "315", "716"];

fn schema() -> Schema {
    Schema::builder("cust")
        .attr("CT", DataType::Str)
        .attr("AC", DataType::Str)
        .attr("ZIP", DataType::Str)
        .build()
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (0..CITIES.len(), 0..CODES.len(), 0..4usize)
        .prop_map(|(c, a, z)| Tuple::from_iter([CITIES[c], CODES[a], &format!("zip{z}")]))
}

fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(arb_tuple(), 0..25)
        .prop_map(|tuples| Relation::with_tuples(schema(), tuples).expect("tuples fit the schema"))
}

fn arb_pattern_value(values: &'static [&'static str]) -> impl Strategy<Value = PatternValue> {
    prop_oneof![
        Just(PatternValue::Wildcard),
        proptest::collection::btree_set(0..values.len(), 1..=2)
            .prop_map(move |idx| PatternValue::in_set(idx.into_iter().map(|i| values[i]))),
        proptest::collection::btree_set(0..values.len(), 1..=2)
            .prop_map(move |idx| PatternValue::not_in_set(idx.into_iter().map(|i| values[i]))),
    ]
}

/// Random single-pattern eCFDs of the shape `[CT] → [AC] | [ZIP?]`.
fn arb_ecfd() -> impl Strategy<Value = ECfd> {
    (
        arb_pattern_value(&CITIES),
        arb_pattern_value(&CODES),
        proptest::option::of(arb_pattern_value(&CODES)),
    )
        .prop_map(|(lhs, rhs, second)| {
            let mut tableau = vec![PatternTuple::new(vec![lhs.clone()], vec![rhs])];
            if let Some(extra) = second {
                tableau.push(PatternTuple::new(vec![lhs], vec![extra]));
            }
            ECfd::new(
                "cust",
                vec!["CT".into()],
                vec!["AC".into()],
                vec![],
                tableau,
            )
            .expect("generated constraints are well-formed")
        })
}

fn arb_constraints() -> impl Strategy<Value = Vec<ECfd>> {
    proptest::collection::vec(arb_ecfd(), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The three detection paths flag exactly the same rows.
    #[test]
    fn detectors_agree(data in arb_relation(), constraints in arb_constraints()) {
        let reference = check_all(&data, &constraints).unwrap();
        let expected_sv: BTreeSet<RowId> = reference.violations().sv_rows().clone();
        let expected_mv: BTreeSet<RowId> = reference.violations().mv_rows().clone();

        let semantic = SemanticDetector::new(&schema(), &constraints).unwrap()
            .detect(&data).unwrap();
        prop_assert_eq!(&semantic.sv_rows, &expected_sv);
        prop_assert_eq!(&semantic.mv_rows, &expected_mv);

        let mut catalog = Catalog::new();
        catalog.create(data).unwrap();
        let sql = BatchDetector::new(&schema(), &constraints).unwrap()
            .detect(&mut catalog).unwrap();
        prop_assert_eq!(&sql.sv_rows, &expected_sv);
        prop_assert_eq!(&sql.mv_rows, &expected_mv);
    }

    /// If the exact analysis says "satisfiable", its witness really satisfies
    /// the constraints; if it says "unsatisfiable", no single tuple over the
    /// pattern constants does (the small-model property).
    #[test]
    fn satisfiability_witnesses_are_sound(constraints in arb_constraints()) {
        let schema = schema();
        let outcome = satisfiability::check_satisfiability(
            &schema,
            &constraints,
            satisfiability::SatOptions::default(),
        ).unwrap();
        match outcome {
            satisfiability::SatOutcome::Satisfiable(witness) => {
                prop_assert!(
                    satisfiability::single_tuple_satisfies(&schema, &constraints, &witness).unwrap()
                );
            }
            satisfiability::SatOutcome::Unsatisfiable => {
                // Spot-check: no tuple built from the mentioned constants
                // satisfies the set.
                for city in CITIES {
                    for code in CODES {
                        let t = Tuple::from_iter([city, code, "zip0"]);
                        prop_assert!(
                            !satisfiability::single_tuple_satisfies(&schema, &constraints, &t).unwrap()
                        );
                    }
                }
            }
        }
    }

    /// Implication is sound with respect to the satisfaction semantics: if
    /// Σ ⊨ φ then every generated instance satisfying Σ also satisfies φ.
    #[test]
    fn implication_is_sound(
        data in arb_relation(),
        constraints in arb_constraints(),
        candidate in arb_ecfd(),
    ) {
        let schema = schema();
        if implication::implies(&schema, &constraints, &candidate).unwrap() {
            let satisfies_sigma = check_all(&data, &constraints).unwrap().is_satisfied();
            if satisfies_sigma {
                let satisfies_phi = check(&data, &candidate).unwrap().is_satisfied();
                prop_assert!(satisfies_phi, "Σ ⊨ φ but a Σ-instance violates φ");
            }
        }
    }

    /// The MAXSS approximation returns a subset that is genuinely satisfiable
    /// (witnessed by a single tuple), and returns the full set whenever the
    /// exact analysis says the set is satisfiable and the solver is exhaustive.
    #[test]
    fn maxss_subsets_are_satisfiable(constraints in arb_constraints()) {
        let schema = schema();
        let encoding = maxss::MaxSsEncoding::build(&schema, &constraints).unwrap();
        let gsat = encoding.instance().solve_exhaustive();
        let (subset, witness) = encoding.satisfied_constraints(&gsat.assignment).unwrap();
        let chosen: Vec<ECfd> = subset.iter().map(|&i| constraints[i].clone()).collect();
        prop_assert!(
            satisfiability::single_tuple_satisfies(&schema, &chosen, &witness).unwrap()
        );
        let exact = satisfiability::is_satisfiable(&schema, &constraints).unwrap();
        if exact {
            prop_assert_eq!(subset.len(), constraints.len());
        }
    }

    /// Repair soundness: a deletion-only plan never deletes more rows than
    /// the trivial repair (delete every flagged row), greedy and exact
    /// (MAXGSAT-backed) deletion repairs agree on small conflict graphs, and
    /// applying the plan yields a relation the detector reports clean.
    #[test]
    fn repairs_are_clean_and_bounded(data in arb_relation(), constraints in arb_constraints()) {
        let schema = schema();
        let engine = RepairEngine::new(&schema, &constraints).unwrap()
            .with_options(RepairOptions {
                mode: RepairMode::DeleteOnly,
                solver: DeletionSolver::Greedy,
                ..RepairOptions::default()
            });
        let evidence = engine.explain(&data).unwrap();
        let flagged = evidence.detection_report().num_violations();
        let plan = engine.plan(&data, &evidence).unwrap();
        prop_assert!(
            plan.num_deletions() <= flagged,
            "{} deletions exceed the trivial bound {flagged}",
            plan.num_deletions()
        );

        // On instances small enough for the exhaustive MAXGSAT oracle the
        // greedy cover must match the exact cardinality repair.
        let graph = engine.conflict_graph(&data, &evidence).unwrap();
        if graph.num_nodes() <= 12 {
            let exact = graph.exact_deletions(12).expect("instance fits the oracle");
            prop_assert_eq!(
                plan.num_deletions(), exact.len(),
                "greedy and exact deletion repairs diverge on a small instance"
            );
        }

        let mut repaired = data.clone();
        plan.to_delta(&data).unwrap().apply(&mut repaired).unwrap();
        let after = SemanticDetector::new(&schema, &constraints).unwrap()
            .detect(&repaired).unwrap();
        prop_assert!(after.is_clean(), "deletion repair left violations behind");
    }

    /// The verified repair loop (value modification + deletion, applied
    /// through the incremental detector) always converges to a clean
    /// instance.
    #[test]
    fn verified_repair_always_converges(data in arb_relation(), constraints in arb_constraints()) {
        let schema = schema();
        let engine = RepairEngine::new(&schema, &constraints).unwrap();
        let mut catalog = Catalog::new();
        catalog.create(data).unwrap();
        let outcome = repair_verified(&engine, &mut catalog).unwrap();
        prop_assert!(outcome.final_report.is_clean());
        // Independent re-check over the surviving base tuples.
        let base = ecfd::repair::base_relation(catalog.get("cust").unwrap(), &schema).unwrap();
        let recheck = SemanticDetector::new(&schema, &constraints).unwrap()
            .detect(&base).unwrap();
        prop_assert!(recheck.is_clean());
    }

    /// `ConstraintSet` minimization never changes detection output: the
    /// minimized and the raw set yield identical violation flags on random
    /// instances (and the minimized set is never larger).
    #[test]
    fn minimization_preserves_detection_output(
        data in arb_relation(),
        constraints in arb_constraints(),
    ) {
        let schema = schema();
        let raw = ConstraintSet::compile(&schema, &constraints).unwrap();
        let minimized =
            ConstraintSet::compile_with(&schema, &constraints, CompileOptions::minimizing())
                .unwrap();
        prop_assert!(minimized.num_patterns() <= raw.num_patterns());

        let flags_raw = SemanticDetector::from_set(&raw).detect(&data).unwrap();
        let flags_min = SemanticDetector::from_set(&minimized).detect(&data).unwrap();
        prop_assert_eq!(&flags_raw.sv_rows, &flags_min.sv_rows);
        prop_assert_eq!(&flags_raw.mv_rows, &flags_min.mv_rows);

        // The session registers through the same pipeline: a minimizing
        // session and a default one must flag the same rows.
        let mut plain = Session::new();
        plain.load(data.clone()).unwrap();
        plain.register(&constraints).unwrap();
        let mut minimizing = Session::new()
            .with_compile_options(CompileOptions::minimizing());
        minimizing.load(data).unwrap();
        minimizing.register(&constraints).unwrap();
        let a = plain.detect().unwrap();
        let b = minimizing.detect().unwrap();
        prop_assert_eq!(a.sv_rows, b.sv_rows);
        prop_assert_eq!(a.mv_rows, b.mv_rows);
    }

    /// Applying a delta and detecting incrementally always matches detecting
    /// the updated relation from scratch.
    #[test]
    fn incremental_matches_recompute(
        data in arb_relation(),
        constraints in arb_constraints(),
        insertions in proptest::collection::vec(arb_tuple(), 0..6),
        delete_mask in proptest::collection::vec(any::<bool>(), 25),
    ) {
        let schema = schema();
        let deletions: Vec<Tuple> = data
            .tuples()
            .enumerate()
            .filter(|(i, _)| delete_mask.get(*i).copied().unwrap_or(false))
            .map(|(_, t)| t.clone())
            .collect();
        let delta = Delta { insertions, deletions };

        let mut catalog = Catalog::new();
        catalog.create(data.clone()).unwrap();
        let mut inc = IncrementalDetector::initialize(&schema, &constraints, &mut catalog).unwrap();
        inc.apply(&mut catalog, &delta).unwrap();
        let incremental = inc.report(&catalog).unwrap();

        let mut updated = data;
        delta.apply(&mut updated).unwrap();
        let from_scratch = SemanticDetector::new(&schema, &constraints).unwrap()
            .detect(&updated).unwrap();
        prop_assert_eq!(incremental.num_sv(), from_scratch.num_sv());
        prop_assert_eq!(incremental.num_mv(), from_scratch.num_mv());
    }
}
